#include "atsp/path.hpp"

#include <algorithm>

namespace mtg::atsp {

std::optional<Path> solve_shortest_path(const CostMatrix& costs,
                                        const PathOptions& options,
                                        SolveStats* stats) {
    const int n = costs.size();
    if (!options.start_cost.empty())
        MTG_EXPECTS(static_cast<int>(options.start_cost.size()) == n);

    if (n == 1) {
        const Cost start =
            options.start_cost.empty() ? 0 : options.start_cost[0];
        if (!options.allowed_starts.empty() &&
            std::find(options.allowed_starts.begin(),
                      options.allowed_starts.end(),
                      0) == options.allowed_starts.end())
            return std::nullopt;
        return Path{{0}, start};
    }

    // Dummy node n closes the path into a cycle.
    CostMatrix closed(n + 1, 0);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i != j) closed.set(i, j, costs.at(i, j));
    for (int v = 0; v < n; ++v) {
        closed.set(v, n, 0);  // path may end anywhere, free return
        Cost start = options.start_cost.empty() ? 0 : options.start_cost[
            static_cast<std::size_t>(v)];
        if (!options.allowed_starts.empty() &&
            std::find(options.allowed_starts.begin(),
                      options.allowed_starts.end(),
                      v) == options.allowed_starts.end())
            start = kForbidden;
        closed.set(n, v, start);
    }

    auto tour = solve_exact(closed, stats);
    if (!tour) return std::nullopt;

    std::vector<int> rotated = rotate_to_front(tour->order, n);
    Path path;
    path.order.assign(rotated.begin() + 1, rotated.end());
    path.cost = tour->cost;
    if (path.cost >= kForbidden) return std::nullopt;
    return path;
}

}  // namespace mtg::atsp
