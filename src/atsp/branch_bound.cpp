#include "atsp/branch_bound.hpp"

#include <algorithm>

#include "atsp/heuristics.hpp"
#include "atsp/hungarian.hpp"

namespace mtg::atsp {

namespace {

class ExactSolver {
public:
    ExactSolver(const CostMatrix& costs, SolveStats* stats)
        : costs_(costs), stats_(stats) {}

    std::optional<Tour> solve() {
        if (auto incumbent = heuristic_tour(costs_)) best_ = incumbent;
        CostMatrix working = costs_;
        search(working);
        return best_;
    }

private:
    const CostMatrix& costs_;
    SolveStats* stats_;
    std::optional<Tour> best_;

    void bump(long long SolveStats::* field) {
        if (stats_) ++(stats_->*field);
    }

    /// Forces arc (i, j): every competing arc out of i / into j becomes
    /// forbidden (except the diagonal, already forbidden).
    static void force_arc(CostMatrix& m, int i, int j) {
        for (int k = 0; k < m.size(); ++k) {
            if (k != j) m.forbid(i, k);
            if (k != i) m.forbid(k, j);
        }
        // Keep the arc itself usable with its original cost — forbid() calls
        // above never touch (i, j).
    }

    void search(CostMatrix& node_costs) {
        bump(&SolveStats::nodes_explored);
        bump(&SolveStats::ap_solves);
        const Assignment ap = solve_assignment(node_costs);
        if (!ap.feasible) return;  // no completion without forbidden arcs
        if (best_ && ap.cost >= best_->cost) return;  // bound

        const auto cycles = assignment_cycles(ap.to);
        if (cycles.size() == 1) {
            // Hamiltonian: candidate tour. Cost taken against the ORIGINAL
            // matrix (forced arcs keep original costs, so ap.cost is right,
            // but recompute defensively).
            Tour tour{cycles.front(), tour_cost(costs_, cycles.front())};
            if (!best_ || tour.cost < best_->cost) best_ = std::move(tour);
            return;
        }

        // Branch on the smallest subtour: child k forbids arc_k and forces
        // arcs_0..k-1 (Bellmore–Malone partition of the solution space).
        const std::vector<int>& subtour = cycles.front();
        const int len = static_cast<int>(subtour.size());
        for (int k = 0; k < len; ++k) {
            CostMatrix child = node_costs;
            for (int f = 0; f < k; ++f) {
                const int from = subtour[static_cast<std::size_t>(f)];
                const int to =
                    subtour[static_cast<std::size_t>((f + 1) % len)];
                force_arc(child, from, to);
            }
            const int bf = subtour[static_cast<std::size_t>(k)];
            const int bt = subtour[static_cast<std::size_t>((k + 1) % len)];
            child.forbid(bf, bt);
            search(child);
        }
    }
};

}  // namespace

std::optional<Tour> solve_exact(const CostMatrix& costs, SolveStats* stats) {
    if (costs.size() == 1)
        return Tour{{0}, 0};  // degenerate: single node, zero-length "tour"
    ExactSolver solver(costs, stats);
    auto result = solver.solve();
    if (result && result->cost >= kForbidden) return std::nullopt;
    return result;
}

std::optional<Tour> solve_brute_force(const CostMatrix& costs) {
    const int n = costs.size();
    MTG_EXPECTS(n <= 11);
    if (n == 1) return Tour{{0}, 0};
    std::vector<int> perm;
    for (int v = 1; v < n; ++v) perm.push_back(v);
    std::optional<Tour> best;
    do {
        std::vector<int> order;
        order.push_back(0);
        order.insert(order.end(), perm.begin(), perm.end());
        if (!tour_feasible(costs, order)) continue;
        const Cost c = tour_cost(costs, order);
        if (!best || c < best->cost) best = Tour{order, c};
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
}

}  // namespace mtg::atsp
