#include "atsp/heuristics.hpp"

#include <algorithm>

namespace mtg::atsp {

std::optional<Tour> nearest_neighbour(const CostMatrix& costs, int start) {
    const int n = costs.size();
    MTG_EXPECTS(start >= 0 && start < n);
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::vector<int> order;
    order.reserve(static_cast<std::size_t>(n));
    int current = start;
    visited[static_cast<std::size_t>(current)] = true;
    order.push_back(current);
    for (int step = 1; step < n; ++step) {
        int best = -1;
        Cost best_cost = kForbidden;
        for (int next = 0; next < n; ++next) {
            if (visited[static_cast<std::size_t>(next)]) continue;
            const Cost c = costs.at(current, next);
            if (c < best_cost) {
                best_cost = c;
                best = next;
            }
        }
        if (best < 0) return std::nullopt;
        visited[static_cast<std::size_t>(best)] = true;
        order.push_back(best);
        current = best;
    }
    if (costs.is_forbidden(current, start)) return std::nullopt;
    return Tour{order, tour_cost(costs, order)};
}

std::optional<Tour> best_nearest_neighbour(const CostMatrix& costs) {
    std::optional<Tour> best;
    for (int start = 0; start < costs.size(); ++start) {
        auto tour = nearest_neighbour(costs, start);
        if (tour && (!best || tour->cost < best->cost)) best = tour;
    }
    return best;
}

Tour or_opt(const CostMatrix& costs, Tour tour) {
    const int n = static_cast<int>(tour.order.size());
    if (n < 4) return tour;
    bool improved = true;
    while (improved) {
        improved = false;
        for (int seg_len = 1; seg_len <= 3 && !improved; ++seg_len) {
            for (int from = 0; from < n && !improved; ++from) {
                // Segment occupies positions from .. from+seg_len-1 (mod n).
                for (int to = 0; to < n && !improved; ++to) {
                    // Skip insertion points inside or adjacent to the segment.
                    bool overlaps = false;
                    for (int k = -1; k <= seg_len; ++k) {
                        if ((from + k + n) % n == to) {
                            overlaps = true;
                            break;
                        }
                    }
                    if (overlaps) continue;

                    std::vector<int> candidate;
                    candidate.reserve(static_cast<std::size_t>(n));
                    std::vector<bool> in_segment(static_cast<std::size_t>(n), false);
                    std::vector<int> segment;
                    for (int k = 0; k < seg_len; ++k) {
                        const int idx = (from + k) % n;
                        in_segment[static_cast<std::size_t>(idx)] = true;
                        segment.push_back(tour.order[static_cast<std::size_t>(idx)]);
                    }
                    for (int idx = 0; idx < n; ++idx) {
                        if (in_segment[static_cast<std::size_t>(idx)]) continue;
                        candidate.push_back(tour.order[static_cast<std::size_t>(idx)]);
                        if (idx == to)
                            candidate.insert(candidate.end(), segment.begin(),
                                             segment.end());
                    }
                    if (static_cast<int>(candidate.size()) != n) continue;
                    if (!tour_feasible(costs, candidate)) continue;
                    const Cost c = tour_cost(costs, candidate);
                    if (c < tour.cost) {
                        tour.order = std::move(candidate);
                        tour.cost = c;
                        improved = true;
                    }
                }
            }
        }
    }
    return tour;
}

std::optional<Tour> heuristic_tour(const CostMatrix& costs) {
    auto tour = best_nearest_neighbour(costs);
    if (!tour) return std::nullopt;
    return or_opt(costs, std::move(*tour));
}

}  // namespace mtg::atsp
