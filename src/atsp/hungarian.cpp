#include "atsp/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace mtg::atsp {

Assignment solve_assignment(const CostMatrix& costs) {
    // Classical potentials formulation (1-indexed internally). See e.g.
    // Jonker & Volgenant; this variant is the compact O(n^3) version.
    const int n = costs.size();
    const Cost inf = std::numeric_limits<Cost>::max() / 4;

    std::vector<Cost> u(static_cast<std::size_t>(n + 1), 0);
    std::vector<Cost> v(static_cast<std::size_t>(n + 1), 0);
    std::vector<int> p(static_cast<std::size_t>(n + 1), 0);    // row matched to column j
    std::vector<int> way(static_cast<std::size_t>(n + 1), 0);  // augmenting path links

    for (int i = 1; i <= n; ++i) {
        p[0] = i;
        int j0 = 0;
        std::vector<Cost> minv(static_cast<std::size_t>(n + 1), inf);
        std::vector<bool> used(static_cast<std::size_t>(n + 1), false);
        do {
            used[static_cast<std::size_t>(j0)] = true;
            const int i0 = p[static_cast<std::size_t>(j0)];
            Cost delta = inf;
            int j1 = -1;
            for (int j = 1; j <= n; ++j) {
                if (used[static_cast<std::size_t>(j)]) continue;
                const Cost cur = costs.at(i0 - 1, j - 1) -
                                 u[static_cast<std::size_t>(i0)] -
                                 v[static_cast<std::size_t>(j)];
                if (cur < minv[static_cast<std::size_t>(j)]) {
                    minv[static_cast<std::size_t>(j)] = cur;
                    way[static_cast<std::size_t>(j)] = j0;
                }
                if (minv[static_cast<std::size_t>(j)] < delta) {
                    delta = minv[static_cast<std::size_t>(j)];
                    j1 = j;
                }
            }
            for (int j = 0; j <= n; ++j) {
                if (used[static_cast<std::size_t>(j)]) {
                    u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
                    v[static_cast<std::size_t>(j)] -= delta;
                } else {
                    minv[static_cast<std::size_t>(j)] -= delta;
                }
            }
            j0 = j1;
        } while (p[static_cast<std::size_t>(j0)] != 0);
        do {
            const int j1 = way[static_cast<std::size_t>(j0)];
            p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
            j0 = j1;
        } while (j0 != 0);
    }

    Assignment result;
    result.to.assign(static_cast<std::size_t>(n), -1);
    for (int j = 1; j <= n; ++j)
        result.to[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] =
            j - 1;
    result.cost = 0;
    result.feasible = true;
    for (int i = 0; i < n; ++i) {
        const Cost c = costs.at(i, result.to[static_cast<std::size_t>(i)]);
        if (c >= kForbidden) result.feasible = false;
        result.cost += c;
    }
    return result;
}

std::vector<std::vector<int>> assignment_cycles(const std::vector<int>& to) {
    const int n = static_cast<int>(to.size());
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<std::vector<int>> cycles;
    for (int start = 0; start < n; ++start) {
        if (seen[static_cast<std::size_t>(start)]) continue;
        std::vector<int> cycle;
        int v = start;
        while (!seen[static_cast<std::size_t>(v)]) {
            seen[static_cast<std::size_t>(v)] = true;
            cycle.push_back(v);
            v = to[static_cast<std::size_t>(v)];
        }
        cycles.push_back(std::move(cycle));
    }
    std::sort(cycles.begin(), cycles.end(),
              [](const auto& a, const auto& b) { return a.size() < b.size(); });
    return cycles;
}

}  // namespace mtg::atsp
