#pragma once

/// \file hungarian.hpp
/// Linear assignment problem solver. The AP relaxation of the ATSP (drop
/// the subtour-elimination constraints) gives the lower bound driving the
/// exact branch-and-bound, exactly as in the Carpaneto–Dell'Amico–Toth
/// algorithm the paper uses.

#include <vector>

#include "atsp/instance.hpp"

namespace mtg::atsp {

/// Result of one assignment solve.
struct Assignment {
    std::vector<int> to;   ///< to[i] = column assigned to row i
    Cost cost{0};          ///< total assignment cost
    bool feasible{false};  ///< false when only forbidden arcs could complete it
};

/// Solves min-cost perfect matching on the square cost matrix via the
/// O(n^3) potentials / shortest-augmenting-path Hungarian algorithm.
/// Forbidden arcs participate with kForbidden cost; an assignment using one
/// is reported infeasible.
[[nodiscard]] Assignment solve_assignment(const CostMatrix& costs);

/// Decomposes an assignment permutation into its cycles, each listed in
/// traversal order; cycles are sorted by size (smallest first).
[[nodiscard]] std::vector<std::vector<int>> assignment_cycles(
    const std::vector<int>& to);

}  // namespace mtg::atsp
