#pragma once

/// \file instance.hpp
/// Asymmetric Travelling Salesman Problem instances (paper §4, f.4.3).
/// The generator's minimum-length GTS search is an ATSP over the Test
/// Pattern Graph; the authors solved it with the exact branch-and-bound
/// Fortran code of Carpaneto, Dell'Amico and Toth (ACM TOMS 750). This
/// module is our C++ substrate for the same problem family.

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace mtg::atsp {

using Cost = std::int64_t;

/// Arc cost used for forbidden arcs; large but far from overflow when
/// summed over any realistic tour.
inline constexpr Cost kForbidden = static_cast<Cost>(1) << 40;

/// Dense cost matrix. Diagonal entries are forbidden by construction.
class CostMatrix {
public:
    explicit CostMatrix(int n, Cost fill = 0);

    [[nodiscard]] int size() const { return n_; }

    [[nodiscard]] Cost at(int from, int to) const {
        MTG_EXPECTS(valid(from) && valid(to));
        return cost_[static_cast<std::size_t>(from * n_ + to)];
    }
    void set(int from, int to, Cost c) {
        MTG_EXPECTS(valid(from) && valid(to));
        cost_[static_cast<std::size_t>(from * n_ + to)] = c;
    }

    /// Marks an arc as unusable.
    void forbid(int from, int to) { set(from, to, kForbidden); }

    [[nodiscard]] bool is_forbidden(int from, int to) const {
        return at(from, to) >= kForbidden;
    }

private:
    int n_;
    std::vector<Cost> cost_;

    [[nodiscard]] bool valid(int v) const { return v >= 0 && v < n_; }
};

/// A closed tour visiting every node exactly once; order[0] is arbitrary.
struct Tour {
    std::vector<int> order;
    Cost cost{0};
};

/// Sum of arc costs along the (periodic) tour — f.4.3.
[[nodiscard]] Cost tour_cost(const CostMatrix& costs, const std::vector<int>& order);

/// True when `order` is a permutation of 0..n-1 using no forbidden arc.
[[nodiscard]] bool tour_feasible(const CostMatrix& costs,
                                 const std::vector<int>& order);

/// Rotates the tour so that `front` is first. Precondition: present.
[[nodiscard]] std::vector<int> rotate_to_front(std::vector<int> order, int front);

}  // namespace mtg::atsp
