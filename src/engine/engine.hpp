#pragma once

/// \file engine.hpp
/// The unified fault-simulation session: one typed query API over the bit
/// and word simulation stacks, over every execution backend.
///
/// Before the Engine, the capabilities of the two parallel stacks —
/// guaranteed detects, detects-all gates, guaranteed traces, dictionary
/// sweeps — were reached through a grab-bag of free functions and
/// hand-constructed runners, and the decision of population, lane width,
/// thread pool and execution strategy was re-made ad hoc at every call
/// site. An Engine makes that decision once per session:
///
///   engine::Engine eng;                         // packed, global pool
///   engine::Query q;
///   q.test = march::march_c_minus();
///   q.universe = engine::BitUniverse{{.memory_size = 8}};
///   q.want = engine::Want::DetectsAll;
///   q.kinds = {fault::FaultKind::CfidUp0};
///   const bool covered = eng.run(q).all;
///
/// The Query names the March test, the fault universe (bit cells or
/// words × width × backgrounds) and the verdict shape (Want); the
/// population is either explicit faults or a kind list the Engine expands
/// — and caches — itself. Results carry per-fault verdicts, the
/// all-detected bit, guaranteed traces (bit or word), and for dictionary
/// sweeps the instance list aligned with its traces.
///
/// Execution is delegated to a Backend (see backend.hpp): Scalar (the
/// original per-fault oracles, for differential testing), Packed (the
/// production 63·W-lane kernels) or Sharded (N sub-ranges merged by
/// concatenation/AND — the in-process rehearsal of the multi-host
/// reduction protocol). All backends are bit-identical; the legacy free
/// functions (sim::covers_everywhere, sim::covers_all, word::
/// covers_everywhere, the guaranteed_* trace accessors, both dictionary
/// build paths) are thin wrappers over Engine::global().
///
/// Re-entrancy: Engine::run (and every convenience over it) is safe to
/// call from any number of threads simultaneously. The backends are
/// stateless, the population caches are internally locked, and the thread
/// pool serialises concurrent parallel_for callers — the query server
/// (net/query_server.hpp) leans on exactly this to host one long-lived
/// Engine under concurrent client sessions, and the TSan CI leg runs the
/// concurrent hammer battery (tests/engine_hammer_test.cpp) to keep it
/// honest.

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "engine/backend.hpp"
#include "fault/instance.hpp"

namespace mtg::engine {

/// Bit universe: full placements on an n-cell bit-oriented memory.
struct BitUniverse {
    sim::RunOptions opts{};
};

/// Word universe: bit-fault placements on a words × width memory, the
/// test run once per data background.
struct WordUniverse {
    std::vector<word::Background> backgrounds;
    word::WordRunOptions opts{};
};

using Universe = std::variant<BitUniverse, WordUniverse>;

/// Verdict shape of a query.
enum class Want {
    Detects,          ///< per-fault guaranteed detection flags
    DetectsAll,       ///< one fail-fast all-detected bit (coverage gates)
    Traces,           ///< full guaranteed traces per fault
    DictionarySweep,  ///< fault::instantiate(kinds) placed canonically,
                      ///< traces aligned with the instance list
};

/// One simulation question. The population is exactly one of:
///   - `kinds`: the Engine expands (and caches) the universe's full
///     placement set — full_population for bit, coverage_population for
///     word; for DictionarySweep, the canonical place_instance placements
///     of fault::instantiate(kinds). Kind-expanded populations are laid
///     out in *canonical* kind order (sorted, deduplicated — see
///     canonical_kinds), so permuted or duplicated kind lists share one
///     cache entry and yield identically-ordered verdicts;
///   - `bit_faults` (bit universe) / `word_faults` (word universe):
///     explicit placements, evaluated as-is.
struct Query {
    march::MarchTest test;
    Universe universe;
    Want want{Want::Detects};
    std::vector<fault::FaultKind> kinds;
    std::vector<sim::InjectedFault> bit_faults;
    std::vector<word::InjectedBitFault> word_faults;
    /// Kind-expanded populations only: sweep the dominance-pruned
    /// expansion (fault::dominance_prune) instead of the full one. A
    /// search accelerator — a fault dominated by another in the universe
    /// adds no fitness signal — NOT a coverage proof: acceptance gates
    /// must re-run with prune=false. Pruned entries live in the
    /// population cache under their own keys, so both stay warm. Ignored
    /// for explicit faults and DictionarySweep.
    bool prune{false};
};

/// Answer to a Query. Which fields are populated depends on `want`:
/// Detects fills `detected` (and `all` as its conjunction); DetectsAll
/// fills only `all`; Traces and DictionarySweep fill `traces` (bit
/// universe) or `word_traces` (word universe) plus `detected`/`all`, and
/// DictionarySweep additionally fills `instances` (instances[i] owns
/// traces[i]).
struct Result {
    Want want{Want::Detects};
    std::vector<bool> detected;
    bool all{true};
    std::vector<sim::RunTrace> traces;
    std::vector<word::WordRunTrace> word_traces;
    std::vector<fault::FaultInstance> instances;
};

/// Canonical form of a kind list: sorted by enum value, deduplicated.
/// This is the identity the population caches key on AND the build order
/// of the cached concatenation — the two must never drift apart, or a
/// cache hit would hand back faults in an order the offsets don't
/// describe.
[[nodiscard]] std::vector<fault::FaultKind> canonical_kinds(
    const std::vector<fault::FaultKind>& kinds);

/// A cached kind expansion: the concatenated population of `kinds` (in
/// canonical order) plus the per-kind layout of the concatenation, so a
/// verdict index maps back to its owning kind without re-expanding any
/// population (the old first_uncovered cold path rebuilt
/// sim::full_population per kind just for this mapping).
struct BitPopulationEntry {
    std::vector<fault::FaultKind> kinds;     ///< canonical = build order
    std::vector<sim::InjectedFault> faults;  ///< concatenated per kind
    /// kinds.size() + 1 fence posts: kind k owns [offsets[k], offsets[k+1]).
    std::vector<std::size_t> offsets;

    /// Owning kind of faults[index].
    [[nodiscard]] fault::FaultKind kind_of(std::size_t index) const;
};

/// Word-universe counterpart (coverage_population per kind).
struct WordPopulationEntry {
    std::vector<fault::FaultKind> kinds;
    std::vector<word::InjectedBitFault> faults;
    std::vector<std::size_t> offsets;

    [[nodiscard]] fault::FaultKind kind_of(std::size_t index) const;
};

/// Thread-safe, bounded cache of kind-expanded populations, keyed by the
/// *canonical* kind list — permuted or duplicated kind lists resolve to
/// one entry instead of breeding redundant copies that trigger spurious
/// budget evictions. Shareable between sessions: the query server's
/// interactive and bulk engines pass one cache so either side's misses
/// warm the other.
///
/// Bounding: a population larger than the whole budget is built and
/// served uncached (the old transient-allocation behaviour); when
/// retained entries would exceed the budget the cache is cleared before
/// inserting (outstanding shared_ptrs stay valid — eviction only costs a
/// rebuild on the next miss). Populations are built outside the lock so
/// a multi-million-fault expansion never stalls hits on other keys.
class PopulationCache {
public:
    /// Default retained-fault budget (~4.2M placements; tens of MB).
    static constexpr std::size_t kDefaultFaultBudget = std::size_t{1} << 22;

    /// `fault_budget` = 0 picks kDefaultFaultBudget. Tests pass a tiny
    /// budget to force evictions mid-run.
    explicit PopulationCache(std::size_t fault_budget = 0);

    /// `pruned` selects the dominance-reduced expansion (see
    /// fault/dominance.hpp); pruned and full entries are cached under
    /// distinct keys, and a pruned miss derives its contents from the
    /// full entry (warming it as a side effect) so the two can never
    /// disagree on layout.
    [[nodiscard]] std::shared_ptr<const BitPopulationEntry> bit(
        const std::vector<fault::FaultKind>& kinds, int memory_size,
        bool pruned = false);

    [[nodiscard]] std::shared_ptr<const WordPopulationEntry> word(
        const std::vector<fault::FaultKind>& kinds,
        const word::WordRunOptions& opts, bool pruned = false);

    struct Stats {
        std::size_t hits{0};
        std::size_t misses{0};
        std::size_t evictions{0};  ///< budget-triggered clears
        std::size_t bit_entries{0};
        std::size_t word_entries{0};
        std::size_t retained_faults{0};
    };
    [[nodiscard]] Stats stats() const;

    [[nodiscard]] std::size_t fault_budget() const { return budget_; }

private:
    using BitKey = std::tuple<std::vector<int>, int, bool>;
    using WordKey = std::tuple<std::vector<int>, int, int, bool>;

    std::size_t budget_;
    mutable std::mutex mutex_;
    std::map<BitKey, std::shared_ptr<const BitPopulationEntry>> bit_;
    std::map<WordKey, std::shared_ptr<const WordPopulationEntry>> word_;
    std::size_t bit_faults_{0};
    std::size_t word_faults_{0};
    Stats stats_;
};

/// Execution strategy of a session.
enum class BackendKind { Scalar, Packed, Sharded };

struct EngineConfig {
    BackendKind backend{BackendKind::Packed};
    util::ThreadPool* pool{nullptr};  ///< nullptr = process-wide pool
    int lane_width{0};                ///< 0 = CPUID / MTG_LANE_WIDTH
    int shards{0};  ///< Sharded only; <= 0 = pool worker count
    /// Population cache shared with other sessions (the query server's
    /// two engines pass one); nullptr = a private cache.
    std::shared_ptr<PopulationCache> cache;
    /// Retained-fault budget for the private cache (0 = the ~4.2M
    /// default). Ignored when `cache` is supplied.
    std::size_t cache_budget{0};
};

/// A simulation session: owns the backend, the lane-width and pool policy,
/// and the population caches. Queries are const and safe to issue from
/// multiple threads (the caches are internally locked, the backends are
/// stateless, and the pool serialises concurrent jobs). Engine::global()
/// is the process-wide packed session the legacy free functions route
/// through; build a local Engine to pin a different backend, pool, width
/// or shard count.
class Engine {
public:
    explicit Engine(EngineConfig config = {});
    /// Adopts a caller-built backend (e.g. make_remote_backend, whose
    /// socket fds a BackendKind enum cannot carry). `config.backend` is
    /// ignored; pool/lane-width policy still applies.
    Engine(std::unique_ptr<Backend> backend, EngineConfig config = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Evaluates one query on this session's backend.
    [[nodiscard]] Result run(const Query& query) const;

    /// Session observability: the population cache's hit/miss/eviction
    /// counters plus per-Want query counts. The synthesis loop reports
    /// probe-cache effectiveness from exactly these numbers, and the
    /// query server's `stats` op re-exports them per engine. Counters are
    /// atomics — stats() is safe concurrent with run() and the snapshot
    /// is monotonic, not transactionally consistent.
    struct Stats {
        PopulationCache::Stats cache;
        std::size_t queries{0};           ///< total run() invocations
        std::size_t want_detects{0};
        std::size_t want_detects_all{0};
        std::size_t want_traces{0};
        std::size_t want_sweeps{0};
    };
    [[nodiscard]] Stats stats() const;

    // ---- typed conveniences over run() ---------------------------------

    /// Detection of every full placement of `kind` (paper-§6 coverage).
    [[nodiscard]] bool covers_everywhere(const march::MarchTest& test,
                                         fault::FaultKind kind,
                                         const sim::RunOptions& opts = {}) const;

    /// One fail-fast sweep over the concatenated populations of `kinds`.
    [[nodiscard]] bool covers_all(const march::MarchTest& test,
                                  const std::vector<fault::FaultKind>& kinds,
                                  const sim::RunOptions& opts = {}) const;

    /// First kind (in the caller's list order) NOT covered, or nullopt
    /// when fully covered. The miss is mapped back to its kind through
    /// the cached population's per-kind offsets — no re-expansion.
    [[nodiscard]] std::optional<fault::FaultKind> first_uncovered(
        const march::MarchTest& test,
        const std::vector<fault::FaultKind>& kinds,
        const sim::RunOptions& opts = {}) const;

    /// Per-fault guaranteed detection of an explicit population.
    [[nodiscard]] std::vector<bool> detects(
        const march::MarchTest& test,
        std::span<const sim::InjectedFault> population,
        const sim::RunOptions& opts = {}) const;

    /// Guaranteed traces of an explicit population, canonical order.
    [[nodiscard]] std::vector<sim::RunTrace> traces(
        const march::MarchTest& test,
        std::span<const sim::InjectedFault> population,
        const sim::RunOptions& opts = {}) const;

    /// Word-universe coverage of `kind` over its cached placement set.
    [[nodiscard]] bool covers_everywhere(
        const march::MarchTest& test,
        const std::vector<word::Background>& backgrounds,
        fault::FaultKind kind, const word::WordRunOptions& opts = {}) const;

    [[nodiscard]] std::vector<bool> detects(
        const march::MarchTest& test,
        const std::vector<word::Background>& backgrounds,
        std::span<const word::InjectedBitFault> population,
        const word::WordRunOptions& opts = {}) const;

    [[nodiscard]] std::vector<word::WordRunTrace> traces(
        const march::MarchTest& test,
        const std::vector<word::Background>& backgrounds,
        std::span<const word::InjectedBitFault> population,
        const word::WordRunOptions& opts = {}) const;

    /// The dictionary build sweep: instances + aligned guaranteed traces.
    [[nodiscard]] Result dictionary_sweep(
        const march::MarchTest& test,
        const std::vector<fault::FaultKind>& kinds,
        const sim::RunOptions& opts = {}) const;

    [[nodiscard]] Result dictionary_sweep(
        const march::MarchTest& test,
        const std::vector<word::Background>& backgrounds,
        const std::vector<fault::FaultKind>& kinds,
        const word::WordRunOptions& opts = {}) const;

    // ---- cached populations --------------------------------------------

    /// Cached full-population entry of `kinds` on an n-cell memory (see
    /// PopulationCache::bit). The entry's faults are concatenated in
    /// canonical kind order with per-kind offsets alongside. `pruned`
    /// selects the dominance-reduced expansion (distinct cache key).
    [[nodiscard]] std::shared_ptr<const BitPopulationEntry> bit_population(
        const std::vector<fault::FaultKind>& kinds, int memory_size,
        bool pruned = false) const;

    /// Cached coverage-population entry of `kinds` on a words × width
    /// memory, keyed by (canonical kinds, words, width, pruned).
    [[nodiscard]] std::shared_ptr<const WordPopulationEntry> word_population(
        const std::vector<fault::FaultKind>& kinds,
        const word::WordRunOptions& opts, bool pruned = false) const;

    [[nodiscard]] const EngineConfig& config() const { return config_; }
    [[nodiscard]] const Backend& backend() const { return *backend_; }
    /// The session's population cache (possibly shared across sessions).
    [[nodiscard]] const std::shared_ptr<PopulationCache>& population_cache()
        const {
        return cache_;
    }

    /// The process-wide session (packed backend, global pool, auto width)
    /// behind the legacy compatibility wrappers.
    [[nodiscard]] static Engine& global();

private:
    EngineConfig config_;
    std::unique_ptr<Backend> backend_;
    std::shared_ptr<PopulationCache> cache_;
    /// Per-Want query counters, indexed by static_cast<int>(Want).
    mutable std::array<std::atomic<std::size_t>, 4> want_counts_{};

    [[nodiscard]] Result run_bit(const Query& query,
                                 const BitUniverse& universe) const;
    [[nodiscard]] Result run_word(const Query& query,
                                  const WordUniverse& universe) const;
};

}  // namespace mtg::engine
