#include "engine/engine.hpp"

#include <algorithm>

#include "fault/dominance.hpp"
#include "sim/batch_runner.hpp"
#include "util/contracts.hpp"
#include "word/word_batch_runner.hpp"

namespace mtg::engine {

namespace {

std::vector<int> kind_key(const std::vector<fault::FaultKind>& kinds) {
    std::vector<int> key;
    key.reserve(kinds.size());
    for (fault::FaultKind kind : kinds) key.push_back(static_cast<int>(kind));
    return key;
}

std::unique_ptr<Backend> make_backend(const EngineConfig& config) {
    switch (config.backend) {
        case BackendKind::Scalar: return make_scalar_backend();
        case BackendKind::Sharded: return make_sharded_backend(config.shards);
        case BackendKind::Packed: break;
    }
    return make_packed_backend();
}

std::shared_ptr<PopulationCache> make_cache(const EngineConfig& config) {
    if (config.cache != nullptr) return config.cache;
    return std::make_shared<PopulationCache>(config.cache_budget);
}

bool all_of(const std::vector<bool>& flags) {
    return std::all_of(flags.begin(), flags.end(),
                       [](bool b) { return b; });
}

template <typename Entry>
fault::FaultKind entry_kind_of(const Entry& entry, std::size_t index) {
    MTG_EXPECTS(!entry.kinds.empty() && index < entry.faults.size());
    // offsets is kinds.size()+1 ascending fence posts; the owning kind is
    // the last one whose offset is <= index.
    const auto it = std::upper_bound(entry.offsets.begin() + 1,
                                     entry.offsets.end(), index);
    return entry.kinds[static_cast<std::size_t>(
        it - (entry.offsets.begin() + 1))];
}

/// The verdict dispatch shared by both universes — one implementation so
/// the derivation of `detected`/`all` from each Want can never drift
/// between the bit and word paths. `traces_field` selects Result::traces
/// or Result::word_traces.
template <typename Context, typename Fault, typename TraceVector>
void evaluate(Result& out, const Backend& backend, const Context& ctx,
              std::span<const Fault> population,
              TraceVector Result::* traces_field) {
    switch (out.want) {
        case Want::Detects:
            out.detected = backend.detects(ctx, population);
            out.all = all_of(out.detected);
            break;
        case Want::DetectsAll:
            out.all = backend.detects_all(ctx, population);
            break;
        case Want::Traces:
        case Want::DictionarySweep: {
            TraceVector& traces = out.*traces_field;
            traces = backend.traces(ctx, population);
            out.detected.reserve(traces.size());
            for (const auto& trace : traces)
                out.detected.push_back(trace.detected);
            out.all = all_of(out.detected);
            break;
        }
    }
}

}  // namespace

std::vector<fault::FaultKind> canonical_kinds(
    const std::vector<fault::FaultKind>& kinds) {
    std::vector<fault::FaultKind> canonical = kinds;
    std::sort(canonical.begin(), canonical.end(),
              [](fault::FaultKind a, fault::FaultKind b) {
                  return static_cast<int>(a) < static_cast<int>(b);
              });
    canonical.erase(std::unique(canonical.begin(), canonical.end()),
                    canonical.end());
    return canonical;
}

fault::FaultKind BitPopulationEntry::kind_of(std::size_t index) const {
    return entry_kind_of(*this, index);
}

fault::FaultKind WordPopulationEntry::kind_of(std::size_t index) const {
    return entry_kind_of(*this, index);
}

PopulationCache::PopulationCache(std::size_t fault_budget)
    : budget_(fault_budget == 0 ? kDefaultFaultBudget : fault_budget) {}

std::shared_ptr<const BitPopulationEntry> PopulationCache::bit(
    const std::vector<fault::FaultKind>& kinds, int memory_size,
    bool pruned) {
    // The key AND the build order are the canonical kind list: a permuted
    // or duplicated caller list lands on the same entry with identical
    // contents, instead of breeding redundant copies that trip budget
    // evictions. Pruned expansions get their own key so full and reduced
    // populations stay warm side by side.
    std::vector<fault::FaultKind> canonical = canonical_kinds(kinds);
    const BitKey key{kind_key(canonical), memory_size, pruned};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = bit_.find(key);
        if (it != bit_.end()) {
            ++stats_.hits;
            return it->second;
        }
        ++stats_.misses;
    }
    // Build outside the lock: a multi-million-fault expansion must not
    // stall concurrent lookups (including hits on unrelated keys).
    auto entry = std::make_shared<BitPopulationEntry>();
    entry->kinds = std::move(canonical);
    entry->offsets.reserve(entry->kinds.size() + 1);
    entry->offsets.push_back(0);
    if (pruned) {
        // Derive from the full entry (hitting or warming its key) and
        // filter segment-wise, so the pruned layout can never disagree
        // with the full one it claims to summarise.
        const std::shared_ptr<const BitPopulationEntry> full =
            bit(entry->kinds, memory_size, false);
        const std::vector<char> keep = fault::dominance_keep_mask(
            std::span<const sim::InjectedFault>(full->faults));
        for (std::size_t k = 0; k + 1 < full->offsets.size(); ++k) {
            for (std::size_t i = full->offsets[k]; i < full->offsets[k + 1];
                 ++i)
                if (keep[i] != 0) entry->faults.push_back(full->faults[i]);
            entry->offsets.push_back(entry->faults.size());
        }
    } else {
        for (fault::FaultKind kind : entry->kinds) {
            const std::vector<sim::InjectedFault> placed =
                sim::full_population(kind, memory_size);
            entry->faults.insert(entry->faults.end(), placed.begin(),
                                 placed.end());
            entry->offsets.push_back(entry->faults.size());
        }
    }
    std::shared_ptr<const BitPopulationEntry> built = std::move(entry);
    // A population beyond the whole budget is served uncached — the old
    // transient-allocation behaviour — instead of pinning it for the
    // session lifetime.
    if (built->faults.size() > budget_) return built;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = bit_.find(key);
    if (it != bit_.end()) return it->second;  // lost a build race
    // The budget spans both universes: retained bit + word faults never
    // exceed it, so stats().retained_faults <= fault_budget() holds.
    if (bit_faults_ + word_faults_ + built->faults.size() > budget_) {
        bit_.clear();
        word_.clear();
        bit_faults_ = 0;
        word_faults_ = 0;
        ++stats_.evictions;
    }
    bit_faults_ += built->faults.size();
    return bit_.emplace(key, std::move(built)).first->second;
}

std::shared_ptr<const WordPopulationEntry> PopulationCache::word(
    const std::vector<fault::FaultKind>& kinds,
    const word::WordRunOptions& opts, bool pruned) {
    std::vector<fault::FaultKind> canonical = canonical_kinds(kinds);
    const WordKey key{kind_key(canonical), opts.words, opts.width, pruned};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = word_.find(key);
        if (it != word_.end()) {
            ++stats_.hits;
            return it->second;
        }
        ++stats_.misses;
    }
    auto entry = std::make_shared<WordPopulationEntry>();
    entry->kinds = std::move(canonical);
    entry->offsets.reserve(entry->kinds.size() + 1);
    entry->offsets.push_back(0);
    if (pruned) {
        const std::shared_ptr<const WordPopulationEntry> full =
            word(entry->kinds, opts, false);
        const std::vector<char> keep = fault::dominance_keep_mask(
            std::span<const word::InjectedBitFault>(full->faults));
        for (std::size_t k = 0; k + 1 < full->offsets.size(); ++k) {
            for (std::size_t i = full->offsets[k]; i < full->offsets[k + 1];
                 ++i)
                if (keep[i] != 0) entry->faults.push_back(full->faults[i]);
            entry->offsets.push_back(entry->faults.size());
        }
    } else {
        for (fault::FaultKind kind : entry->kinds) {
            const std::vector<word::InjectedBitFault> placed =
                word::coverage_population(kind, opts);
            entry->faults.insert(entry->faults.end(), placed.begin(),
                                 placed.end());
            entry->offsets.push_back(entry->faults.size());
        }
    }
    std::shared_ptr<const WordPopulationEntry> built = std::move(entry);
    if (built->faults.size() > budget_) return built;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = word_.find(key);
    if (it != word_.end()) return it->second;  // lost a build race
    if (bit_faults_ + word_faults_ + built->faults.size() > budget_) {
        bit_.clear();
        word_.clear();
        bit_faults_ = 0;
        word_faults_ = 0;
        ++stats_.evictions;
    }
    word_faults_ += built->faults.size();
    return word_.emplace(key, std::move(built)).first->second;
}

PopulationCache::Stats PopulationCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.bit_entries = bit_.size();
    out.word_entries = word_.size();
    out.retained_faults = bit_faults_ + word_faults_;
    return out;
}

Engine::Engine(EngineConfig config)
    : config_(config), backend_(make_backend(config)),
      cache_(make_cache(config)) {}

Engine::Engine(std::unique_ptr<Backend> backend, EngineConfig config)
    : config_(config), backend_(std::move(backend)),
      cache_(make_cache(config)) {
    MTG_EXPECTS(backend_ != nullptr);
}

Engine::~Engine() = default;

Engine& Engine::global() {
    static Engine instance;
    return instance;
}

std::shared_ptr<const BitPopulationEntry> Engine::bit_population(
    const std::vector<fault::FaultKind>& kinds, int memory_size,
    bool pruned) const {
    return cache_->bit(kinds, memory_size, pruned);
}

std::shared_ptr<const WordPopulationEntry> Engine::word_population(
    const std::vector<fault::FaultKind>& kinds,
    const word::WordRunOptions& opts, bool pruned) const {
    return cache_->word(kinds, opts, pruned);
}

Result Engine::run(const Query& query) const {
    want_counts_[static_cast<std::size_t>(query.want)].fetch_add(
        1, std::memory_order_relaxed);
    if (const auto* bit = std::get_if<BitUniverse>(&query.universe))
        return run_bit(query, *bit);
    return run_word(query, std::get<WordUniverse>(query.universe));
}

Engine::Stats Engine::stats() const {
    Stats out;
    out.cache = cache_->stats();
    out.want_detects =
        want_counts_[static_cast<std::size_t>(Want::Detects)].load(
            std::memory_order_relaxed);
    out.want_detects_all =
        want_counts_[static_cast<std::size_t>(Want::DetectsAll)].load(
            std::memory_order_relaxed);
    out.want_traces =
        want_counts_[static_cast<std::size_t>(Want::Traces)].load(
            std::memory_order_relaxed);
    out.want_sweeps =
        want_counts_[static_cast<std::size_t>(Want::DictionarySweep)].load(
            std::memory_order_relaxed);
    out.queries = out.want_detects + out.want_detects_all + out.want_traces +
                  out.want_sweeps;
    return out;
}

Result Engine::run_bit(const Query& query,
                       const BitUniverse& universe) const {
    MTG_EXPECTS(query.word_faults.empty());
    Result out;
    out.want = query.want;
    const BitContext ctx{query.test, universe.opts, config_.pool,
                         config_.lane_width};

    // Resolve the population: canonical instance placements for a
    // dictionary sweep, the cached kind expansion, or explicit faults.
    std::shared_ptr<const BitPopulationEntry> cached;
    std::vector<sim::InjectedFault> placed;
    std::span<const sim::InjectedFault> population = query.bit_faults;
    if (query.want == Want::DictionarySweep) {
        // An empty kind list yields the empty sweep (no instances, no
        // traces) — the graceful degenerate the dictionaries and the
        // coverage matrix have always produced.
        MTG_EXPECTS(query.bit_faults.empty());
        out.instances = fault::instantiate(query.kinds);
        placed.reserve(out.instances.size());
        for (const fault::FaultInstance& inst : out.instances)
            placed.push_back(
                sim::place_instance(inst, universe.opts.memory_size));
        population = placed;
    } else if (!query.kinds.empty()) {
        MTG_EXPECTS(query.bit_faults.empty());
        cached = bit_population(query.kinds, universe.opts.memory_size,
                                query.prune);
        population = cached->faults;
    }

    evaluate(out, *backend_, ctx, population, &Result::traces);
    return out;
}

Result Engine::run_word(const Query& query,
                        const WordUniverse& universe) const {
    MTG_EXPECTS(query.bit_faults.empty());
    MTG_EXPECTS(!universe.backgrounds.empty());
    Result out;
    out.want = query.want;
    const WordContext ctx{query.test, universe.backgrounds, universe.opts,
                          config_.pool, config_.lane_width};

    std::shared_ptr<const WordPopulationEntry> cached;
    std::vector<word::InjectedBitFault> placed;
    std::span<const word::InjectedBitFault> population = query.word_faults;
    if (query.want == Want::DictionarySweep) {
        // Empty kind list -> empty sweep, mirroring run_bit.
        MTG_EXPECTS(query.word_faults.empty());
        out.instances = fault::instantiate(query.kinds);
        placed.reserve(out.instances.size());
        for (const fault::FaultInstance& inst : out.instances)
            placed.push_back(word::place_instance(inst, universe.opts));
        population = placed;
    } else if (!query.kinds.empty()) {
        MTG_EXPECTS(query.word_faults.empty());
        cached = word_population(query.kinds, universe.opts, query.prune);
        population = cached->faults;
    }

    evaluate(out, *backend_, ctx, population, &Result::word_traces);
    return out;
}

// ---- typed conveniences ---------------------------------------------------

bool Engine::covers_everywhere(const march::MarchTest& test,
                               fault::FaultKind kind,
                               const sim::RunOptions& opts) const {
    return covers_all(test, {kind}, opts);
}

bool Engine::covers_all(const march::MarchTest& test,
                        const std::vector<fault::FaultKind>& kinds,
                        const sim::RunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.want = Want::DetectsAll;
    query.kinds = kinds;
    return run(query).all;
}

std::optional<fault::FaultKind> Engine::first_uncovered(
    const march::MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const sim::RunOptions& opts) const {
    if (kinds.empty()) return std::nullopt;
    // One multi-kind per-fault query over the concatenated population:
    // hits the same canonical cache entry covers_all primes, instead of
    // evicting it with |kinds| single-kind entries as the old per-kind
    // covers_everywhere loop did.
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.want = Want::Detects;
    query.kinds = kinds;
    const Result result = run(query);
    if (result.all) return std::nullopt;
    // Map every miss back to its owning canonical kind through the cached
    // entry's offsets (a deterministic rebuild if the entry was evicted in
    // between — contents are identical either way), then report the first
    // *caller-order* kind that owns a miss, preserving the documented
    // "first kind in your list" semantics under canonical storage.
    const auto entry = bit_population(kinds, opts.memory_size);
    MTG_EXPECTS(entry->faults.size() == result.detected.size());
    std::vector<bool> kind_missed(entry->kinds.size(), false);
    std::size_t kind_index = 0;
    for (std::size_t i = 0; i < result.detected.size(); ++i) {
        if (result.detected[i]) continue;
        while (i >= entry->offsets[kind_index + 1]) ++kind_index;
        kind_missed[kind_index] = true;
    }
    for (fault::FaultKind kind : kinds) {
        const auto it = std::lower_bound(
            entry->kinds.begin(), entry->kinds.end(), kind,
            [](fault::FaultKind a, fault::FaultKind b) {
                return static_cast<int>(a) < static_cast<int>(b);
            });
        if (it != entry->kinds.end() && *it == kind &&
            kind_missed[static_cast<std::size_t>(it - entry->kinds.begin())])
            return kind;
    }
    return kinds.back();  // unreachable: every miss has an owner
}

std::vector<bool> Engine::detects(
    const march::MarchTest& test,
    std::span<const sim::InjectedFault> population,
    const sim::RunOptions& opts) const {
    const BitContext ctx{test, opts, config_.pool, config_.lane_width};
    return backend_->detects(ctx, population);
}

std::vector<sim::RunTrace> Engine::traces(
    const march::MarchTest& test,
    std::span<const sim::InjectedFault> population,
    const sim::RunOptions& opts) const {
    const BitContext ctx{test, opts, config_.pool, config_.lane_width};
    return backend_->traces(ctx, population);
}

bool Engine::covers_everywhere(const march::MarchTest& test,
                               const std::vector<word::Background>& backgrounds,
                               fault::FaultKind kind,
                               const word::WordRunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = WordUniverse{backgrounds, opts};
    query.want = Want::DetectsAll;
    query.kinds = {kind};
    return run(query).all;
}

std::vector<bool> Engine::detects(
    const march::MarchTest& test,
    const std::vector<word::Background>& backgrounds,
    std::span<const word::InjectedBitFault> population,
    const word::WordRunOptions& opts) const {
    const WordContext ctx{test, backgrounds, opts, config_.pool,
                          config_.lane_width};
    return backend_->detects(ctx, population);
}

std::vector<word::WordRunTrace> Engine::traces(
    const march::MarchTest& test,
    const std::vector<word::Background>& backgrounds,
    std::span<const word::InjectedBitFault> population,
    const word::WordRunOptions& opts) const {
    const WordContext ctx{test, backgrounds, opts, config_.pool,
                          config_.lane_width};
    return backend_->traces(ctx, population);
}

Result Engine::dictionary_sweep(const march::MarchTest& test,
                                const std::vector<fault::FaultKind>& kinds,
                                const sim::RunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.want = Want::DictionarySweep;
    query.kinds = kinds;
    return run(query);
}

Result Engine::dictionary_sweep(const march::MarchTest& test,
                                const std::vector<word::Background>& backgrounds,
                                const std::vector<fault::FaultKind>& kinds,
                                const word::WordRunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = WordUniverse{backgrounds, opts};
    query.want = Want::DictionarySweep;
    query.kinds = kinds;
    return run(query);
}

}  // namespace mtg::engine
