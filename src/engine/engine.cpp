#include "engine/engine.hpp"

#include <algorithm>

#include "sim/batch_runner.hpp"
#include "util/contracts.hpp"
#include "word/word_batch_runner.hpp"

namespace mtg::engine {

namespace {

/// Cache budget in retained fault placements per cache (~4.2M; tens of
/// MB). A session that cycles through many large universes evicts rather
/// than accreting; the generator's repeated same-key probes always hit.
constexpr std::size_t kCacheFaultBudget = std::size_t{1} << 22;

std::vector<int> kind_key(const std::vector<fault::FaultKind>& kinds) {
    std::vector<int> key;
    key.reserve(kinds.size());
    for (fault::FaultKind kind : kinds) key.push_back(static_cast<int>(kind));
    return key;
}

std::unique_ptr<Backend> make_backend(const EngineConfig& config) {
    switch (config.backend) {
        case BackendKind::Scalar: return make_scalar_backend();
        case BackendKind::Sharded: return make_sharded_backend(config.shards);
        case BackendKind::Packed: break;
    }
    return make_packed_backend();
}

bool all_of(const std::vector<bool>& flags) {
    return std::all_of(flags.begin(), flags.end(),
                       [](bool b) { return b; });
}

/// The verdict dispatch shared by both universes — one implementation so
/// the derivation of `detected`/`all` from each Want can never drift
/// between the bit and word paths. `traces_field` selects Result::traces
/// or Result::word_traces.
template <typename Context, typename Fault, typename TraceVector>
void evaluate(Result& out, const Backend& backend, const Context& ctx,
              std::span<const Fault> population,
              TraceVector Result::* traces_field) {
    switch (out.want) {
        case Want::Detects:
            out.detected = backend.detects(ctx, population);
            out.all = all_of(out.detected);
            break;
        case Want::DetectsAll:
            out.all = backend.detects_all(ctx, population);
            break;
        case Want::Traces:
        case Want::DictionarySweep: {
            TraceVector& traces = out.*traces_field;
            traces = backend.traces(ctx, population);
            out.detected.reserve(traces.size());
            for (const auto& trace : traces)
                out.detected.push_back(trace.detected);
            out.all = all_of(out.detected);
            break;
        }
    }
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(config), backend_(make_backend(config)) {}

Engine::Engine(std::unique_ptr<Backend> backend, EngineConfig config)
    : config_(config), backend_(std::move(backend)) {
    MTG_EXPECTS(backend_ != nullptr);
}

Engine::~Engine() = default;

Engine& Engine::global() {
    static Engine instance;
    return instance;
}

std::shared_ptr<const std::vector<sim::InjectedFault>> Engine::bit_population(
    const std::vector<fault::FaultKind>& kinds, int memory_size) const {
    const BitKey key{kind_key(kinds), memory_size};
    {
        const std::lock_guard<std::mutex> lock(cache_mutex_);
        const auto it = bit_cache_.find(key);
        if (it != bit_cache_.end()) return it->second;
    }
    // Build outside the lock: a multi-million-fault expansion must not
    // stall concurrent queries (including hits on unrelated keys).
    auto population = std::make_shared<const std::vector<sim::InjectedFault>>(
        sim::full_population(kinds, memory_size));
    // A population beyond the whole budget is served uncached — the old
    // transient-allocation behaviour — instead of pinning it for the
    // session lifetime.
    if (population->size() > kCacheFaultBudget) return population;
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = bit_cache_.find(key);
    if (it != bit_cache_.end()) return it->second;  // lost a build race
    if (bit_cache_faults_ + population->size() > kCacheFaultBudget) {
        bit_cache_.clear();
        bit_cache_faults_ = 0;
    }
    bit_cache_faults_ += population->size();
    return bit_cache_.emplace(key, std::move(population)).first->second;
}

std::shared_ptr<const std::vector<word::InjectedBitFault>>
Engine::word_population(const std::vector<fault::FaultKind>& kinds,
                        const word::WordRunOptions& opts) const {
    const WordKey key{kind_key(kinds), opts.words, opts.width};
    {
        const std::lock_guard<std::mutex> lock(cache_mutex_);
        const auto it = word_cache_.find(key);
        if (it != word_cache_.end()) return it->second;
    }
    std::vector<word::InjectedBitFault> placements;
    for (fault::FaultKind kind : kinds) {
        const std::vector<word::InjectedBitFault> placed =
            word::coverage_population(kind, opts);
        placements.insert(placements.end(), placed.begin(), placed.end());
    }
    auto population =
        std::make_shared<const std::vector<word::InjectedBitFault>>(
            std::move(placements));
    if (population->size() > kCacheFaultBudget) return population;
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = word_cache_.find(key);
    if (it != word_cache_.end()) return it->second;  // lost a build race
    if (word_cache_faults_ + population->size() > kCacheFaultBudget) {
        word_cache_.clear();
        word_cache_faults_ = 0;
    }
    word_cache_faults_ += population->size();
    return word_cache_.emplace(key, std::move(population)).first->second;
}

Result Engine::run(const Query& query) const {
    if (const auto* bit = std::get_if<BitUniverse>(&query.universe))
        return run_bit(query, *bit);
    return run_word(query, std::get<WordUniverse>(query.universe));
}

Result Engine::run_bit(const Query& query,
                       const BitUniverse& universe) const {
    MTG_EXPECTS(query.word_faults.empty());
    Result out;
    out.want = query.want;
    const BitContext ctx{query.test, universe.opts, config_.pool,
                         config_.lane_width};

    // Resolve the population: canonical instance placements for a
    // dictionary sweep, the cached kind expansion, or explicit faults.
    std::shared_ptr<const std::vector<sim::InjectedFault>> cached;
    std::vector<sim::InjectedFault> placed;
    std::span<const sim::InjectedFault> population = query.bit_faults;
    if (query.want == Want::DictionarySweep) {
        // An empty kind list yields the empty sweep (no instances, no
        // traces) — the graceful degenerate the dictionaries and the
        // coverage matrix have always produced.
        MTG_EXPECTS(query.bit_faults.empty());
        out.instances = fault::instantiate(query.kinds);
        placed.reserve(out.instances.size());
        for (const fault::FaultInstance& inst : out.instances)
            placed.push_back(
                sim::place_instance(inst, universe.opts.memory_size));
        population = placed;
    } else if (!query.kinds.empty()) {
        MTG_EXPECTS(query.bit_faults.empty());
        cached = bit_population(query.kinds, universe.opts.memory_size);
        population = *cached;
    }

    evaluate(out, *backend_, ctx, population, &Result::traces);
    return out;
}

Result Engine::run_word(const Query& query,
                        const WordUniverse& universe) const {
    MTG_EXPECTS(query.bit_faults.empty());
    MTG_EXPECTS(!universe.backgrounds.empty());
    Result out;
    out.want = query.want;
    const WordContext ctx{query.test, universe.backgrounds, universe.opts,
                          config_.pool, config_.lane_width};

    std::shared_ptr<const std::vector<word::InjectedBitFault>> cached;
    std::vector<word::InjectedBitFault> placed;
    std::span<const word::InjectedBitFault> population = query.word_faults;
    if (query.want == Want::DictionarySweep) {
        // Empty kind list -> empty sweep, mirroring run_bit.
        MTG_EXPECTS(query.word_faults.empty());
        out.instances = fault::instantiate(query.kinds);
        placed.reserve(out.instances.size());
        for (const fault::FaultInstance& inst : out.instances)
            placed.push_back(word::place_instance(inst, universe.opts));
        population = placed;
    } else if (!query.kinds.empty()) {
        MTG_EXPECTS(query.word_faults.empty());
        cached = word_population(query.kinds, universe.opts);
        population = *cached;
    }

    evaluate(out, *backend_, ctx, population, &Result::word_traces);
    return out;
}

// ---- typed conveniences ---------------------------------------------------

bool Engine::covers_everywhere(const march::MarchTest& test,
                               fault::FaultKind kind,
                               const sim::RunOptions& opts) const {
    return covers_all(test, {kind}, opts);
}

bool Engine::covers_all(const march::MarchTest& test,
                        const std::vector<fault::FaultKind>& kinds,
                        const sim::RunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.want = Want::DetectsAll;
    query.kinds = kinds;
    return run(query).all;
}

std::optional<fault::FaultKind> Engine::first_uncovered(
    const march::MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const sim::RunOptions& opts) const {
    if (kinds.empty()) return std::nullopt;
    // One multi-kind per-fault query over the concatenated population:
    // hits the same (kinds, n) cache entry covers_all primes, instead of
    // evicting it with |kinds| single-kind entries as the old per-kind
    // covers_everywhere loop did.
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.want = Want::Detects;
    query.kinds = kinds;
    const Result result = run(query);
    if (result.all) return std::nullopt;
    const auto miss = static_cast<std::size_t>(
        std::find(result.detected.begin(), result.detected.end(), false) -
        result.detected.begin());
    // Map the verdict index back to its kind by walking the per-kind
    // population sizes — cold path, taken at most once per call.
    std::size_t boundary = 0;
    for (fault::FaultKind kind : kinds) {
        boundary += sim::full_population(kind, opts.memory_size).size();
        if (miss < boundary) return kind;
    }
    return kinds.back();
}

std::vector<bool> Engine::detects(
    const march::MarchTest& test,
    std::span<const sim::InjectedFault> population,
    const sim::RunOptions& opts) const {
    const BitContext ctx{test, opts, config_.pool, config_.lane_width};
    return backend_->detects(ctx, population);
}

std::vector<sim::RunTrace> Engine::traces(
    const march::MarchTest& test,
    std::span<const sim::InjectedFault> population,
    const sim::RunOptions& opts) const {
    const BitContext ctx{test, opts, config_.pool, config_.lane_width};
    return backend_->traces(ctx, population);
}

bool Engine::covers_everywhere(const march::MarchTest& test,
                               const std::vector<word::Background>& backgrounds,
                               fault::FaultKind kind,
                               const word::WordRunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = WordUniverse{backgrounds, opts};
    query.want = Want::DetectsAll;
    query.kinds = {kind};
    return run(query).all;
}

std::vector<bool> Engine::detects(
    const march::MarchTest& test,
    const std::vector<word::Background>& backgrounds,
    std::span<const word::InjectedBitFault> population,
    const word::WordRunOptions& opts) const {
    const WordContext ctx{test, backgrounds, opts, config_.pool,
                          config_.lane_width};
    return backend_->detects(ctx, population);
}

std::vector<word::WordRunTrace> Engine::traces(
    const march::MarchTest& test,
    const std::vector<word::Background>& backgrounds,
    std::span<const word::InjectedBitFault> population,
    const word::WordRunOptions& opts) const {
    const WordContext ctx{test, backgrounds, opts, config_.pool,
                          config_.lane_width};
    return backend_->traces(ctx, population);
}

Result Engine::dictionary_sweep(const march::MarchTest& test,
                                const std::vector<fault::FaultKind>& kinds,
                                const sim::RunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.want = Want::DictionarySweep;
    query.kinds = kinds;
    return run(query);
}

Result Engine::dictionary_sweep(const march::MarchTest& test,
                                const std::vector<word::Background>& backgrounds,
                                const std::vector<fault::FaultKind>& kinds,
                                const word::WordRunOptions& opts) const {
    Query query;
    query.test = test;
    query.universe = WordUniverse{backgrounds, opts};
    query.want = Want::DictionarySweep;
    query.kinds = kinds;
    return run(query);
}

}  // namespace mtg::engine
