#pragma once

/// \file backend.hpp
/// Execution backends behind engine::Engine.
///
/// A Backend answers the three primitive simulation questions — per-fault
/// guaranteed detection, all-detected with fail-fast, and full guaranteed
/// traces — for both fault universes (bit populations on an n-cell memory,
/// bit-fault placements on a words × width word memory). The Engine picks
/// the backend once per session; every consumer above it (generator gate,
/// coverage matrix, dictionaries, compatibility wrappers) is backend-
/// agnostic.
///
/// Four implementations ship today:
///   - ScalarBackend: the original one-memory-per-fault oracles
///     (sim::run_once / word::detects intersection). Slow, obviously
///     correct — kept for differential testing.
///   - PackedBackend: the production path; wraps sim::BatchRunner /
///     word::WordBatchRunner (63·W-lane packed passes, (chunk × ⇕)
///     grid sharded across the thread pool).
///   - ShardedBackend: splits the population across N sub-ranges aligned
///     to whole lane blocks and runs each through a PackedBackend,
///     merging per-fault verdicts by concatenation and the all-detected
///     verdict by AND — the split/merge protocol a multi-host transport
///     needs (per chunk the result is one 64-bit lane mask).
///   - RemoteBackend (net/remote_backend.hpp): the same split/merge over
///     sockets — ranges scattered to worker peers speaking the net/wire
///     format, with straggler re-dispatch and dead-peer failover.
///
/// Every backend produces bit-identical results for every lane width,
/// worker count and shard count (tests/engine_test.cpp enforces this
/// against the scalar oracle).

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "march/march_test.hpp"
#include "sim/march_runner.hpp"
#include "util/thread_pool.hpp"
#include "word/background.hpp"
#include "word/word_march.hpp"
#include "word/word_trace.hpp"

namespace mtg::engine {

/// Session state a backend needs to evaluate a bit-universe query.
struct BitContext {
    const march::MarchTest& test;
    const sim::RunOptions& opts;
    util::ThreadPool* pool{nullptr};  ///< nullptr = process-wide pool
    int lane_width{0};                ///< 0 = active_lane_width()
};

/// Session state a backend needs to evaluate a word-universe query.
struct WordContext {
    const march::MarchTest& test;
    const std::vector<word::Background>& backgrounds;
    const word::WordRunOptions& opts;
    util::ThreadPool* pool{nullptr};
    int lane_width{0};
};

/// The uniform execution interface: three verdict shapes × two universes.
/// All methods are const and safe to call concurrently.
class Backend {
public:
    virtual ~Backend() = default;

    [[nodiscard]] virtual const char* name() const = 0;

    /// Per-fault guaranteed detection (every ⇕ expansion detects),
    /// element i answering for population[i].
    [[nodiscard]] virtual std::vector<bool> detects(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const = 0;

    /// True when every population member is detected (fail-fast allowed).
    [[nodiscard]] virtual bool detects_all(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const = 0;

    /// Full guaranteed traces in canonical order, element i for
    /// population[i].
    [[nodiscard]] virtual std::vector<sim::RunTrace> traces(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const = 0;

    [[nodiscard]] virtual std::vector<bool> detects(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const = 0;

    [[nodiscard]] virtual bool detects_all(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const = 0;

    [[nodiscard]] virtual std::vector<word::WordRunTrace> traces(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const = 0;
};

/// Contiguous [begin, end) fault ranges, aligned to whole W=8 lane blocks
/// (504 lanes) so every boundary is a chunk boundary at any lane width:
/// each shard's per-chunk 64-bit lane masks and trace grids are disjoint,
/// and merging is pure concatenation (per-fault answers) or AND (the
/// all-detected verdict). ShardedBackend splits with it in-process; the
/// RemoteBackend coordinator (net/remote_backend.hpp) ships the same
/// ranges over sockets.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t total, int shards);

[[nodiscard]] std::unique_ptr<Backend> make_scalar_backend();
[[nodiscard]] std::unique_ptr<Backend> make_packed_backend();

/// `shards` sub-ranges over a PackedBackend; shards <= 0 resolves to the
/// executing pool's worker count per call.
[[nodiscard]] std::unique_ptr<Backend> make_sharded_backend(int shards);

}  // namespace mtg::engine
