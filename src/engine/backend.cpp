#include "engine/backend.hpp"

#include <algorithm>
#include <utility>

#include "sim/batch_runner.hpp"
#include "word/word_batch_runner.hpp"

namespace mtg::engine {

namespace {

util::ThreadPool& pool_of(util::ThreadPool* pool) {
    return pool != nullptr ? *pool : util::ThreadPool::global();
}

// ------------------------------------------------------------- scalar ----

/// Guaranteed bit trace via one sim::run_once per ⇕ expansion: reads and
/// (site, cell) observations intersected across expansions and emitted in
/// the canonical order (textual site order, ascending cell) — the
/// definition the packed kernels are differenced against.
sim::RunTrace scalar_bit_trace(const BitContext& ctx,
                               const sim::InjectedFault& fault) {
    const std::vector<sim::ReadSite> sites = sim::read_sites(ctx.test);
    const std::vector<std::vector<int>> site_ids =
        sim::read_site_ids(ctx.test);
    const int n = ctx.opts.memory_size;
    std::vector<char> site_ok(sites.size(), 1);
    std::vector<char> obs_ok(sites.size() * static_cast<std::size_t>(n), 1);
    // Scratch occurrence grids, rebuilt per expansion so the intersection
    // is one AND sweep instead of a std::find rescan per (site, cell).
    std::vector<char> site_hit(sites.size());
    std::vector<char> obs_hit(obs_ok.size());
    bool detected = true;
    for (unsigned choice : sim::expansion_choices(ctx.test, ctx.opts)) {
        const sim::RunTrace once =
            sim::run_once(ctx.test, {fault}, choice, ctx.opts);
        detected = detected && once.detected;
        std::fill(site_hit.begin(), site_hit.end(), 0);
        std::fill(obs_hit.begin(), obs_hit.end(), 0);
        for (const sim::ReadSite& site : once.failing_reads)
            site_hit[static_cast<std::size_t>(
                site_ids[static_cast<std::size_t>(site.element)]
                        [static_cast<std::size_t>(site.op)])] = 1;
        for (const sim::Observation& obs : once.failing_observations) {
            const auto s = static_cast<std::size_t>(
                site_ids[static_cast<std::size_t>(obs.site.element)]
                        [static_cast<std::size_t>(obs.site.op)]);
            obs_hit[s * static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(obs.cell)] = 1;
        }
        for (std::size_t s = 0; s < sites.size(); ++s)
            site_ok[s] = static_cast<char>(site_ok[s] & site_hit[s]);
        for (std::size_t i = 0; i < obs_ok.size(); ++i)
            obs_ok[i] = static_cast<char>(obs_ok[i] & obs_hit[i]);
    }
    sim::RunTrace out;
    out.detected = detected;
    for (std::size_t s = 0; s < sites.size(); ++s) {
        if (site_ok[s] != 0) out.failing_reads.push_back(sites[s]);
        for (int cell = 0; cell < n; ++cell)
            if (obs_ok[s * static_cast<std::size_t>(n) +
                       static_cast<std::size_t>(cell)] != 0)
                out.failing_observations.push_back({sites[s], cell});
    }
    return out;
}

class ScalarBackend final : public Backend {
public:
    [[nodiscard]] const char* name() const override { return "scalar"; }

    [[nodiscard]] std::vector<bool> detects(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        std::vector<bool> result;
        result.reserve(population.size());
        for (const sim::InjectedFault& fault : population)
            result.push_back(sim::detects(ctx.test, fault, ctx.opts));
        return result;
    }

    [[nodiscard]] bool detects_all(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        for (const sim::InjectedFault& fault : population)
            if (!sim::detects(ctx.test, fault, ctx.opts)) return false;
        return true;
    }

    [[nodiscard]] std::vector<sim::RunTrace> traces(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        std::vector<sim::RunTrace> result;
        result.reserve(population.size());
        for (const sim::InjectedFault& fault : population)
            result.push_back(scalar_bit_trace(ctx, fault));
        return result;
    }

    [[nodiscard]] std::vector<bool> detects(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        std::vector<bool> result;
        result.reserve(population.size());
        for (const word::InjectedBitFault& fault : population)
            result.push_back(
                word::detects(ctx.test, ctx.backgrounds, fault, ctx.opts));
        return result;
    }

    [[nodiscard]] bool detects_all(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        for (const word::InjectedBitFault& fault : population)
            if (!word::detects(ctx.test, ctx.backgrounds, fault, ctx.opts))
                return false;
        return true;
    }

    [[nodiscard]] std::vector<word::WordRunTrace> traces(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        std::vector<word::WordRunTrace> result;
        result.reserve(population.size());
        for (const word::InjectedBitFault& fault : population)
            result.push_back(word::guaranteed_trace(ctx.test, ctx.backgrounds,
                                                    fault, ctx.opts));
        return result;
    }
};

// ------------------------------------------------------------- packed ----

class PackedBackend final : public Backend {
public:
    [[nodiscard]] const char* name() const override { return "packed"; }

    [[nodiscard]] std::vector<bool> detects(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        return runner(ctx).detects(population);
    }

    [[nodiscard]] bool detects_all(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        return runner(ctx).detects_all(population);
    }

    [[nodiscard]] std::vector<sim::RunTrace> traces(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        return runner(ctx).run(population);
    }

    [[nodiscard]] std::vector<bool> detects(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        return runner(ctx).detects(population);
    }

    [[nodiscard]] bool detects_all(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        return runner(ctx).detects_all(population);
    }

    [[nodiscard]] std::vector<word::WordRunTrace> traces(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        return runner(ctx).run(population);
    }

private:
    [[nodiscard]] static sim::BatchRunner runner(const BitContext& ctx) {
        return sim::BatchRunner(ctx.test, ctx.opts, ctx.pool,
                                ctx.lane_width);
    }
    [[nodiscard]] static word::WordBatchRunner runner(const WordContext& ctx) {
        return word::WordBatchRunner(ctx.test, ctx.backgrounds, ctx.opts,
                                     ctx.pool, ctx.lane_width);
    }
};

// ------------------------------------------------------------ sharded ----

class ShardedBackend final : public Backend {
public:
    explicit ShardedBackend(int shards)
        : shards_(shards), inner_(make_packed_backend()) {}

    [[nodiscard]] const char* name() const override { return "sharded"; }

    [[nodiscard]] std::vector<bool> detects(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        return merge_detects(ctx, population);
    }

    [[nodiscard]] bool detects_all(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        return merge_detects_all(ctx, population);
    }

    [[nodiscard]] std::vector<sim::RunTrace> traces(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        return merge_traces<sim::RunTrace>(ctx, population);
    }

    [[nodiscard]] std::vector<bool> detects(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        return merge_detects(ctx, population);
    }

    [[nodiscard]] bool detects_all(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        return merge_detects_all(ctx, population);
    }

    [[nodiscard]] std::vector<word::WordRunTrace> traces(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        return merge_traces<word::WordRunTrace>(ctx, population);
    }

private:
    int shards_;
    std::unique_ptr<Backend> inner_;

    [[nodiscard]] int shard_count(util::ThreadPool* pool) const {
        return shards_ > 0
                   ? shards_
                   : static_cast<int>(pool_of(pool).worker_count());
    }

    template <typename Context, typename Fault>
    [[nodiscard]] std::vector<bool> merge_detects(
        const Context& ctx, std::span<const Fault> population) const {
        std::vector<bool> result;
        result.reserve(population.size());
        for (const auto& [begin, end] :
             shard_ranges(population.size(), shard_count(ctx.pool))) {
            const std::vector<bool> shard =
                inner_->detects(ctx, population.subspan(begin, end - begin));
            result.insert(result.end(), shard.begin(), shard.end());
        }
        return result;
    }

    template <typename Context, typename Fault>
    [[nodiscard]] bool merge_detects_all(
        const Context& ctx, std::span<const Fault> population) const {
        // AND reduction with an early exit after the first escaping shard
        // — the fail-fast the packed detects_all keeps per chunk.
        for (const auto& [begin, end] :
             shard_ranges(population.size(), shard_count(ctx.pool))) {
            if (!inner_->detects_all(ctx,
                                     population.subspan(begin, end - begin)))
                return false;
        }
        return true;
    }

    template <typename Trace, typename Context, typename Fault>
    [[nodiscard]] std::vector<Trace> merge_traces(
        const Context& ctx, std::span<const Fault> population) const {
        std::vector<Trace> result;
        result.reserve(population.size());
        for (const auto& [begin, end] :
             shard_ranges(population.size(), shard_count(ctx.pool))) {
            std::vector<Trace> shard =
                inner_->traces(ctx, population.subspan(begin, end - begin));
            std::move(shard.begin(), shard.end(),
                      std::back_inserter(result));
        }
        return result;
    }
};

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t total, int shards) {
    constexpr std::size_t kAlign = 63 * 8;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (total == 0) return ranges;
    const std::size_t blocks = (total + kAlign - 1) / kAlign;
    const auto n = static_cast<std::size_t>(std::max(shards, 1));
    std::size_t block = 0;
    for (std::size_t s = 0; s < n && block < blocks; ++s) {
        const std::size_t take =
            (blocks - block + (n - s - 1)) / (n - s);  // even split, ceil
        const std::size_t begin = block * kAlign;
        const std::size_t end = std::min(total, (block + take) * kAlign);
        ranges.emplace_back(begin, end);
        block += take;
    }
    return ranges;
}

std::unique_ptr<Backend> make_scalar_backend() {
    return std::make_unique<ScalarBackend>();
}

std::unique_ptr<Backend> make_packed_backend() {
    return std::make_unique<PackedBackend>();
}

std::unique_ptr<Backend> make_sharded_backend(int shards) {
    return std::make_unique<ShardedBackend>(shards);
}

}  // namespace mtg::engine
