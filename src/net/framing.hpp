#pragma once

/// \file framing.hpp
/// Length-prefixed framing over stream sockets, plus the few socket
/// helpers the transport needs (AF_UNIX socketpairs for same-process
/// loopback peers, TCP listen/accept/connect for real multi-process
/// fleets).
///
/// Two frame formats exist, negotiated per connection by the wire-level
/// Hello exchange (see wire.hpp):
///
///   v1:  [u32 length (LE)][length payload bytes]
///   v2:  [u32 length (LE)][length payload bytes][u32 CRC32C (LE)]
///
/// The v2 trailer is the CRC32C of the payload bytes, so garbage on the
/// stream is caught at the frame layer (RecvStatus::Corrupt) before the
/// strict payload decoder runs. The length prefix counts payload bytes
/// only in both formats. A channel starts in v1 (Hello frames always
/// travel as v1); set_frame_version(2) switches both directions once the
/// exchange settles.
///
/// Frames are bounded so a garbage length prefix is rejected as Corrupt
/// instead of driving a giant allocation. The bound defaults to
/// kMaxFrameBytes (64 MiB) and is per-channel configurable
/// (set_max_frame_bytes) because Traces / DictionarySweep replies for
/// large word memories can legitimately exceed 64 MiB — both ends of a
/// connection must agree on the raised cap (RemoteOptions::
/// max_frame_bytes on the coordinator, WorkerHooks::max_frame_bytes on
/// the worker). recv()
/// distinguishes the four outcomes the coordinator's fault-tolerance
/// logic needs: a complete frame, a timeout with no frame started (the
/// peer is merely slow), an orderly or errored close, and a corrupt
/// stream (oversized frame, CRC mismatch, or a connection that died
/// mid-frame — a truncated frame can never be resynchronized, so the
/// channel is unusable afterwards).
///
/// FrameChannel is full-duplex: one thread may send while another
/// blocks in recv (the coordinator's dispatcher/receiver split). Two
/// threads must not call recv — or send — concurrently.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace mtg::net {

/// Default upper bound on a frame payload (64 MiB) — far above any shard
/// query we ship, far below a believable-garbage u32 length.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Default idle-progress bound for mid-frame reads (30 s). Once a frame
/// has started arriving, each further byte must land within this window
/// or the stream is declared Corrupt — a byte-dribbling (or silently
/// wedged) peer can no longer hold a receiver forever on a frame it never
/// finishes. Healthy peers write whole frames in a handful of syscalls,
/// so the bound only ever fires on a pathological stream.
inline constexpr int kDefaultMidFrameIdleMs = 30000;

/// A stream socket speaking length-prefixed frames. Owns the fd.
class FrameChannel {
public:
    explicit FrameChannel(int fd);
    ~FrameChannel();

    FrameChannel(FrameChannel&& other) noexcept;
    FrameChannel& operator=(FrameChannel&& other) noexcept;
    FrameChannel(const FrameChannel&) = delete;
    FrameChannel& operator=(const FrameChannel&) = delete;

    enum class RecvStatus {
        Ok,       ///< one complete frame delivered
        Timeout,  ///< deadline passed before a frame *started* arriving
        Closed,   ///< orderly EOF or connection error between frames
        Corrupt,  ///< oversized length, CRC mismatch, or EOF/error mid-frame
    };

    /// Sends one frame. Returns false when the connection is dead.
    [[nodiscard]] bool send(std::span<const std::uint8_t> payload);

    /// Receives one frame into `payload`. `timeout_ms < 0` blocks
    /// indefinitely (until a frame, close, or shutdown()) — the timeout
    /// only governs waiting *between* frames. Once a frame's length
    /// prefix has started arriving, the frame is read to completion, but
    /// each successive byte must arrive within the mid-frame idle bound
    /// (set_mid_frame_idle_ms): a stalled mid-frame stream is Corrupt,
    /// never Timeout, because it cannot resync — and, since PR 9, it can
    /// no longer hold the receiver past any deadline budget either.
    [[nodiscard]] RecvStatus recv(std::vector<std::uint8_t>& payload,
                                  int timeout_ms);

    /// Wakes a blocked recv()/send() from another thread; they return
    /// Closed / false. Safe to call repeatedly.
    void shutdown();

    /// Switches the frame format (1 = bare, 2 = CRC32C trailer) for both
    /// send and recv. Call only between frames, after the wire Hello
    /// exchange has settled on a version.
    void set_frame_version(int version);
    [[nodiscard]] int frame_version() const { return frame_version_; }

    /// Raises (or lowers) this channel's frame payload bound for both
    /// directions; 0 restores the kMaxFrameBytes default. A received
    /// length prefix beyond the bound is still RecvStatus::Corrupt, and
    /// send() still refuses oversize payloads — the cap moves, the
    /// enforcement doesn't.
    void set_max_frame_bytes(std::uint32_t max_bytes);
    [[nodiscard]] std::uint32_t max_frame_bytes() const {
        return max_frame_bytes_;
    }

    /// Sets the idle-progress bound for mid-frame reads: once a frame has
    /// started, recv() declares the stream Corrupt when no byte arrives
    /// for `idle_ms` milliseconds. 0 restores kDefaultMidFrameIdleMs;
    /// negative disables the bound (the pre-PR 9 infinite wait, kept only
    /// for tests that need a wedgeable channel). Progress resets the
    /// window, so a slow-but-advancing peer is never cut off.
    void set_mid_frame_idle_ms(int idle_ms);
    [[nodiscard]] int mid_frame_idle_ms() const { return mid_frame_idle_ms_; }

    [[nodiscard]] int fd() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }

private:
    int fd_{-1};
    int frame_version_{1};
    std::uint32_t max_frame_bytes_{kMaxFrameBytes};
    int mid_frame_idle_ms_{kDefaultMidFrameIdleMs};

    enum class IoStatus { Ok, Timeout, Closed, Stalled };
    [[nodiscard]] IoStatus read_exact(std::uint8_t* out, std::size_t n,
                                      int timeout_ms, bool started);
};

/// A connected AF_UNIX stream socketpair — the loopback transport.
[[nodiscard]] std::pair<int, int> socket_pair();

/// TCP helpers for the march_tool serve / fleet verbs. All throw
/// std::runtime_error on failure.
[[nodiscard]] int tcp_listen(std::uint16_t port);
[[nodiscard]] int tcp_accept(int listen_fd);

/// Connects with a bounded wait: the socket is put in non-blocking mode,
/// the connect is raced against poll(), and the fd is restored to
/// blocking before it is returned. `timeout_ms < 0` waits indefinitely
/// (the pre-supervision behaviour); a blackholed host can no longer hang
/// the caller for the OS default of minutes. Throws on failure or
/// timeout. Retry-with-backoff belongs to the caller (the RemoteBackend
/// reconnect path), not here.
[[nodiscard]] int tcp_connect(const std::string& host, std::uint16_t port,
                              int timeout_ms = -1);

}  // namespace mtg::net
