#include "net/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <utility>

#include "engine/backend.hpp"
#include "net/framing.hpp"
#include "net/wire.hpp"
#include "util/contracts.hpp"

namespace mtg::net {

WireResult evaluate_query(const engine::Backend& backend,
                          const WireQuery& query) {
    WireResult result;
    result.id = query.id;
    result.universe = query.universe;
    result.want = query.want;
    result.range_begin = query.range_begin;
    result.range_end = query.range_end;
    if (query.universe == UniverseTag::Bit) {
        const engine::BitContext ctx{query.test, query.bit_opts, nullptr, 0};
        switch (query.want) {
            case WantTag::Detects:
                result.verdicts = backend.detects(ctx, query.bit_faults);
                break;
            case WantTag::DetectsAll:
                result.all = backend.detects_all(ctx, query.bit_faults);
                break;
            case WantTag::Traces:
                result.traces = backend.traces(ctx, query.bit_faults);
                break;
        }
    } else {
        const engine::WordContext ctx{query.test, query.backgrounds,
                                      query.word_opts, nullptr, 0};
        switch (query.want) {
            case WantTag::Detects:
                result.verdicts = backend.detects(ctx, query.word_faults);
                break;
            case WantTag::DetectsAll:
                result.all = backend.detects_all(ctx, query.word_faults);
                break;
            case WantTag::Traces:
                result.word_traces = backend.traces(ctx, query.word_faults);
                break;
        }
    }
    return result;
}

void serve_connection(int fd, const WorkerHooks& hooks) {
    FrameChannel channel(fd);
    channel.set_max_frame_bytes(hooks.max_frame_bytes);
    const std::unique_ptr<engine::Backend> backend =
        engine::make_packed_backend();
    const int own_max = hooks.max_frame_version > 0 ? hooks.max_frame_version
                                                    : kMaxFrameVersion;
    std::vector<std::uint8_t> payload;
    int queries = 0;
    bool first_message = true;
    for (;;) {
        const FrameChannel::RecvStatus status =
            channel.recv(payload, /*timeout_ms=*/-1);
        if (status != FrameChannel::RecvStatus::Ok) return;

        Message message;
        try {
            message = decode_message(payload);
        } catch (const WireFormatError& e) {
            // An unframeable query stream cannot be answered reliably:
            // report and drop the connection.
            (void)channel.send(encode_error({0, e.what()}));
            return;
        }

        // Negotiation and heartbeat traffic is not a query: no hooks, no
        // counters.
        if (message.type == MessageType::Hello) {
            if (!first_message) {
                (void)channel.send(
                    encode_error({0, "Hello only opens a connection"}));
                return;
            }
            first_message = false;
            const int agreed =
                std::min(message.hello.max_frame_version, own_max);
            // The acceptance travels in the offerer's frame version (v1),
            // THEN the channel switches.
            if (!channel.send(encode_hello({agreed}))) return;
            channel.set_frame_version(agreed);
            continue;
        }
        first_message = false;
        if (message.type == MessageType::Ping) {
            if (!channel.send(encode_pong({message.ping.nonce}))) return;
            continue;
        }
        if (message.type != MessageType::Query) {
            (void)channel.send(
                encode_error({0, "expected a Query message"}));
            return;
        }

        ++queries;
        if ((hooks.die_after_queries >= 0 &&
             queries >= hooks.die_after_queries) ||
            (hooks.flap_after_queries >= 0 &&
             queries >= hooks.flap_after_queries))
            return;  // killed mid-query: no reply, connection closes
        if (hooks.delay_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(hooks.delay_ms));
        if (hooks.garbage_after_queries >= 0 &&
            queries >= hooks.garbage_after_queries) {
            // A syntactically framed but semantically undecodable reply.
            const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe,
                                                       0xef, 0x00, 0x01};
            (void)channel.send(garbage);
            return;
        }
        if (hooks.dribble_after_queries >= 0 &&
            queries >= hooks.dribble_after_queries) {
            // Start a plausible frame (length prefix promising 64 bytes,
            // two payload bytes), stall mid-payload, then close — a peer
            // that wedges while replying instead of dying cleanly.
            const std::vector<std::uint8_t> partial = {64, 0, 0, 0, 0x01,
                                                       0x02};
            std::size_t sent = 0;
            while (sent < partial.size()) {
                const ssize_t wrote =
                    ::send(channel.fd(), partial.data() + sent,
                           partial.size() - sent, MSG_NOSIGNAL);
                if (wrote <= 0) break;
                sent += static_cast<std::size_t>(wrote);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(hooks.dribble_stall_ms));
            return;
        }
        if (hooks.truncate_after_queries >= 0 &&
            queries >= hooks.truncate_after_queries) {
            // Length prefix promising 64 bytes, connection closed after 2.
            const std::vector<std::uint8_t> truncated = {64, 0, 0, 0, 0x01,
                                                         0x02};
            std::size_t sent = 0;
            while (sent < truncated.size()) {
                const ssize_t wrote =
                    ::send(channel.fd(), truncated.data() + sent,
                           truncated.size() - sent, MSG_NOSIGNAL);
                if (wrote <= 0) break;
                sent += static_cast<std::size_t>(wrote);
            }
            return;
        }

        std::vector<std::uint8_t> reply;
        try {
            reply = encode_result(evaluate_query(*backend, message.query));
        } catch (const std::exception& e) {
            reply = encode_error({message.query.id, e.what()});
        }
        if (!channel.send(reply)) return;
        if (hooks.answered_queries != nullptr)
            hooks.answered_queries->fetch_add(1, std::memory_order_relaxed);
    }
}

LoopbackFleet::LoopbackFleet(int peers, std::vector<WorkerHooks> peer_hooks) {
    coordinator_fds_.reserve(static_cast<std::size_t>(peers));
    workers_.reserve(static_cast<std::size_t>(peers));
    reconnect_hooks_.resize(static_cast<std::size_t>(peers));
    connection_counts_.assign(static_cast<std::size_t>(peers), 1);
    answered_.reserve(static_cast<std::size_t>(peers));
    for (int i = 0; i < peers; ++i)
        answered_.push_back(std::make_unique<std::atomic<int>>(0));
    for (int i = 0; i < peers; ++i) {
        const auto [coordinator_fd, worker_fd] = socket_pair();
        coordinator_fds_.push_back(coordinator_fd);
        WorkerHooks hooks = static_cast<std::size_t>(i) < peer_hooks.size()
                                ? peer_hooks[static_cast<std::size_t>(i)]
                                : WorkerHooks{};
        if (hooks.answered_queries == nullptr)
            hooks.answered_queries =
                answered_[static_cast<std::size_t>(i)].get();
        workers_.emplace_back(
            [worker_fd, hooks] { serve_connection(worker_fd, hooks); });
    }
}

LoopbackFleet::~LoopbackFleet() {
    // Any fds not taken by a coordinator are closed here, which unblocks
    // the matching workers; taken fds are closed by their FrameChannels.
    std::vector<int> fds;
    std::vector<std::thread> workers;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        fds = std::move(coordinator_fds_);
        workers = std::move(workers_);
    }
    for (const int fd : fds)
        if (fd >= 0) ::shutdown(fd, SHUT_RDWR), ::close(fd);
    for (std::thread& worker : workers)
        if (worker.joinable()) worker.join();
}

std::vector<int> LoopbackFleet::take_fds() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<int> fds = std::move(coordinator_fds_);
    coordinator_fds_.assign(fds.size(), -1);
    return fds;
}

void LoopbackFleet::set_reconnect_hooks(int peer, WorkerHooks hooks) {
    const std::lock_guard<std::mutex> lock(mutex_);
    reconnect_hooks_.at(static_cast<std::size_t>(peer)) = hooks;
}

std::function<int()> LoopbackFleet::reconnector(int peer) {
    MTG_EXPECTS(peer >= 0 &&
                static_cast<std::size_t>(peer) < reconnect_hooks_.size());
    return [this, peer] {
        const auto [coordinator_fd, worker_fd] = socket_pair();
        const std::lock_guard<std::mutex> lock(mutex_);
        WorkerHooks hooks =
            reconnect_hooks_[static_cast<std::size_t>(peer)];
        if (hooks.answered_queries == nullptr)
            hooks.answered_queries =
                answered_[static_cast<std::size_t>(peer)].get();
        workers_.emplace_back(
            [worker_fd, hooks] { serve_connection(worker_fd, hooks); });
        ++connection_counts_[static_cast<std::size_t>(peer)];
        return coordinator_fd;
    };
}

int LoopbackFleet::connection_count(int peer) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return connection_counts_.at(static_cast<std::size_t>(peer));
}

int LoopbackFleet::queries_answered(int peer) const {
    return answered_.at(static_cast<std::size_t>(peer))
        ->load(std::memory_order_relaxed);
}

}  // namespace mtg::net
