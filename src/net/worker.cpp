#include "net/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "engine/backend.hpp"
#include "net/framing.hpp"
#include "net/wire.hpp"

namespace mtg::net {

namespace {

/// Evaluates one decoded shard query on the local packed backend.
WireResult evaluate(const engine::Backend& backend, const WireQuery& query) {
    WireResult result;
    result.id = query.id;
    result.universe = query.universe;
    result.want = query.want;
    result.range_begin = query.range_begin;
    result.range_end = query.range_end;
    if (query.universe == UniverseTag::Bit) {
        const engine::BitContext ctx{query.test, query.bit_opts, nullptr, 0};
        switch (query.want) {
            case WantTag::Detects:
                result.verdicts = backend.detects(ctx, query.bit_faults);
                break;
            case WantTag::DetectsAll:
                result.all = backend.detects_all(ctx, query.bit_faults);
                break;
            case WantTag::Traces:
                result.traces = backend.traces(ctx, query.bit_faults);
                break;
        }
    } else {
        const engine::WordContext ctx{query.test, query.backgrounds,
                                      query.word_opts, nullptr, 0};
        switch (query.want) {
            case WantTag::Detects:
                result.verdicts = backend.detects(ctx, query.word_faults);
                break;
            case WantTag::DetectsAll:
                result.all = backend.detects_all(ctx, query.word_faults);
                break;
            case WantTag::Traces:
                result.word_traces = backend.traces(ctx, query.word_faults);
                break;
        }
    }
    return result;
}

}  // namespace

void serve_connection(int fd, const WorkerHooks& hooks) {
    FrameChannel channel(fd);
    const std::unique_ptr<engine::Backend> backend =
        engine::make_packed_backend();
    std::vector<std::uint8_t> payload;
    int queries = 0;
    for (;;) {
        const FrameChannel::RecvStatus status =
            channel.recv(payload, /*timeout_ms=*/-1);
        if (status != FrameChannel::RecvStatus::Ok) return;

        Message message;
        try {
            message = decode_message(payload);
        } catch (const WireFormatError& e) {
            // An unframeable query stream cannot be answered reliably:
            // report and drop the connection.
            (void)channel.send(encode_error({0, e.what()}));
            return;
        }
        if (message.type != MessageType::Query) {
            (void)channel.send(
                encode_error({0, "expected a Query message"}));
            return;
        }

        ++queries;
        if (hooks.die_after_queries >= 0 &&
            queries >= hooks.die_after_queries)
            return;  // killed mid-query: no reply, connection closes
        if (hooks.delay_ms > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(hooks.delay_ms));
        if (hooks.garbage_after_queries >= 0 &&
            queries >= hooks.garbage_after_queries) {
            // A syntactically framed but semantically undecodable reply.
            const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe,
                                                       0xef, 0x00, 0x01};
            (void)channel.send(garbage);
            return;
        }
        if (hooks.truncate_after_queries >= 0 &&
            queries >= hooks.truncate_after_queries) {
            // Length prefix promising 64 bytes, connection closed after 2.
            const std::vector<std::uint8_t> truncated = {64, 0, 0, 0, 0x01,
                                                         0x02};
            std::size_t sent = 0;
            while (sent < truncated.size()) {
                const ssize_t wrote =
                    ::send(channel.fd(), truncated.data() + sent,
                           truncated.size() - sent, MSG_NOSIGNAL);
                if (wrote <= 0) break;
                sent += static_cast<std::size_t>(wrote);
            }
            return;
        }

        std::vector<std::uint8_t> reply;
        try {
            reply = encode_result(evaluate(*backend, message.query));
        } catch (const std::exception& e) {
            reply = encode_error({message.query.id, e.what()});
        }
        if (!channel.send(reply)) return;
    }
}

LoopbackFleet::LoopbackFleet(int peers, std::vector<WorkerHooks> peer_hooks) {
    coordinator_fds_.reserve(static_cast<std::size_t>(peers));
    workers_.reserve(static_cast<std::size_t>(peers));
    for (int i = 0; i < peers; ++i) {
        const auto [coordinator_fd, worker_fd] = socket_pair();
        coordinator_fds_.push_back(coordinator_fd);
        const WorkerHooks hooks =
            static_cast<std::size_t>(i) < peer_hooks.size()
                ? peer_hooks[static_cast<std::size_t>(i)]
                : WorkerHooks{};
        workers_.emplace_back(
            [worker_fd, hooks] { serve_connection(worker_fd, hooks); });
    }
}

LoopbackFleet::~LoopbackFleet() {
    // Any fds not taken by a coordinator are closed here, which unblocks
    // the matching workers; taken fds are closed by their FrameChannels.
    for (const int fd : coordinator_fds_)
        if (fd >= 0) ::shutdown(fd, SHUT_RDWR), ::close(fd);
    for (std::thread& worker : workers_)
        if (worker.joinable()) worker.join();
}

std::vector<int> LoopbackFleet::take_fds() {
    std::vector<int> fds = std::move(coordinator_fds_);
    coordinator_fds_.assign(fds.size(), -1);
    return fds;
}

}  // namespace mtg::net
