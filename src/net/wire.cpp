#include "net/wire.hpp"

#include <limits>

namespace mtg::net {

namespace {

// --------------------------------------------------------------- writer ----

class Writer {
public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

    void count(std::size_t n) {
        if (n > std::numeric_limits<std::uint32_t>::max())
            throw WireFormatError("count overflows u32");
        u32(static_cast<std::uint32_t>(n));
    }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }

private:
    std::vector<std::uint8_t> bytes_;
};

// --------------------------------------------------------------- reader ----

class Reader {
public:
    explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    std::uint8_t u8() {
        need(1);
        return bytes_[pos_++];
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    /// An element count, sanity-bounded by the bytes actually left: every
    /// encoded element below costs at least one byte, so a count larger
    /// than the remainder is garbage, not a huge allocation.
    std::size_t count() {
        const std::uint32_t n = u32();
        if (n > remaining()) throw WireFormatError("count exceeds payload");
        return n;
    }

    [[nodiscard]] std::size_t remaining() const {
        return bytes_.size() - pos_;
    }

    void expect_end() const {
        if (pos_ != bytes_.size())
            throw WireFormatError("trailing bytes after message");
    }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_{0};

    void need(std::size_t n) const {
        if (bytes_.size() - pos_ < n)
            throw WireFormatError("truncated message");
    }
};

// ---------------------------------------------------- component codecs ----

void put_test(Writer& w, const march::MarchTest& test) {
    w.count(test.size());
    for (const march::MarchElement& element : test.elements()) {
        w.u8(static_cast<std::uint8_t>(element.order));
        w.count(element.ops.size());
        for (const march::MarchOp& op : element.ops) {
            w.u8(static_cast<std::uint8_t>(op.kind));
            w.u8(op.value);
        }
    }
}

march::MarchTest get_test(Reader& r) {
    std::vector<march::MarchElement> elements;
    const std::size_t element_count = r.count();
    elements.reserve(element_count);
    for (std::size_t e = 0; e < element_count; ++e) {
        const std::uint8_t order = r.u8();
        if (order > static_cast<std::uint8_t>(march::AddressOrder::Any))
            throw WireFormatError("bad address order");
        std::vector<march::MarchOp> ops;
        const std::size_t op_count = r.count();
        if (op_count == 0) throw WireFormatError("empty march element");
        ops.reserve(op_count);
        for (std::size_t o = 0; o < op_count; ++o) {
            const std::uint8_t kind = r.u8();
            if (kind > static_cast<std::uint8_t>(march::OpKind::Wait))
                throw WireFormatError("bad op kind");
            const std::uint8_t value = r.u8();
            if (value > 1) throw WireFormatError("bad op value");
            ops.push_back({static_cast<march::OpKind>(kind), value});
        }
        elements.emplace_back(static_cast<march::AddressOrder>(order),
                              std::move(ops));
    }
    return march::MarchTest(std::move(elements));
}

fault::FaultKind get_fault_kind(Reader& r) {
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(fault::FaultKind::AfMap))
        throw WireFormatError("bad fault kind");
    return static_cast<fault::FaultKind>(kind);
}

void put_bit_faults(Writer& w,
                    std::span<const sim::InjectedFault> faults) {
    w.count(faults.size());
    for (const sim::InjectedFault& fault : faults) {
        w.u8(static_cast<std::uint8_t>(fault.kind));
        w.i32(fault.cell_a);
        w.i32(fault.cell_b);
    }
}

std::vector<sim::InjectedFault> get_bit_faults(Reader& r) {
    std::vector<sim::InjectedFault> faults;
    const std::size_t n = r.count();
    faults.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        sim::InjectedFault fault;
        fault.kind = get_fault_kind(r);
        fault.cell_a = r.i32();
        fault.cell_b = r.i32();
        faults.push_back(fault);
    }
    return faults;
}

void put_word_faults(Writer& w,
                     std::span<const word::InjectedBitFault> faults) {
    w.count(faults.size());
    for (const word::InjectedBitFault& fault : faults) {
        w.u8(static_cast<std::uint8_t>(fault.kind));
        w.i32(fault.a.word);
        w.i32(fault.a.bit);
        w.i32(fault.b.word);
        w.i32(fault.b.bit);
    }
}

std::vector<word::InjectedBitFault> get_word_faults(Reader& r) {
    std::vector<word::InjectedBitFault> faults;
    const std::size_t n = r.count();
    faults.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        word::InjectedBitFault fault;
        fault.kind = get_fault_kind(r);
        fault.a.word = r.i32();
        fault.a.bit = r.i32();
        fault.b.word = r.i32();
        fault.b.bit = r.i32();
        faults.push_back(fault);
    }
    return faults;
}

void put_verdicts(Writer& w, const std::vector<bool>& verdicts) {
    // Packed into 64-bit masks, LSB-first — the per-chunk lane-mask
    // currency of the reduction protocol.
    w.count(verdicts.size());
    std::uint64_t mask = 0;
    int filled = 0;
    for (const bool v : verdicts) {
        if (v) mask |= std::uint64_t{1} << filled;
        if (++filled == 64) {
            w.u64(mask);
            mask = 0;
            filled = 0;
        }
    }
    if (filled != 0) w.u64(mask);
}

std::vector<bool> get_verdicts(Reader& r) {
    const std::size_t n = r.u32();
    if ((n + 63) / 64 * 8 > r.remaining())
        throw WireFormatError("verdict mask exceeds payload");
    std::vector<bool> verdicts;
    verdicts.reserve(n);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 64 == 0) mask = r.u64();
        verdicts.push_back((mask >> (i % 64)) & 1);
    }
    return verdicts;
}

void put_read_site(Writer& w, const sim::ReadSite& site) {
    w.i32(site.element);
    w.i32(site.op);
}

sim::ReadSite get_read_site(Reader& r) {
    sim::ReadSite site;
    site.element = r.i32();
    site.op = r.i32();
    return site;
}

void put_bit_traces(Writer& w, const std::vector<sim::RunTrace>& traces) {
    w.count(traces.size());
    for (const sim::RunTrace& trace : traces) {
        w.u8(trace.detected ? 1 : 0);
        w.count(trace.failing_reads.size());
        for (const sim::ReadSite& site : trace.failing_reads)
            put_read_site(w, site);
        w.count(trace.failing_observations.size());
        for (const sim::Observation& obs : trace.failing_observations) {
            put_read_site(w, obs.site);
            w.i32(obs.cell);
        }
    }
}

std::vector<sim::RunTrace> get_bit_traces(Reader& r) {
    std::vector<sim::RunTrace> traces;
    const std::size_t n = r.count();
    traces.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        sim::RunTrace trace;
        trace.detected = r.u8() != 0;
        const std::size_t reads = r.count();
        trace.failing_reads.reserve(reads);
        for (std::size_t j = 0; j < reads; ++j)
            trace.failing_reads.push_back(get_read_site(r));
        const std::size_t observations = r.count();
        trace.failing_observations.reserve(observations);
        for (std::size_t j = 0; j < observations; ++j) {
            sim::Observation obs;
            obs.site = get_read_site(r);
            obs.cell = r.i32();
            trace.failing_observations.push_back(obs);
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

void put_word_traces(Writer& w,
                     const std::vector<word::WordRunTrace>& traces) {
    w.count(traces.size());
    for (const word::WordRunTrace& trace : traces) {
        w.u8(trace.detected ? 1 : 0);
        w.count(trace.failing_reads.size());
        for (const word::WordReadSite& read : trace.failing_reads) {
            w.i32(read.background);
            put_read_site(w, read.site);
        }
        w.count(trace.failing_observations.size());
        for (const word::WordObservation& obs : trace.failing_observations) {
            w.i32(obs.background);
            put_read_site(w, obs.site);
            w.i32(obs.word);
            w.u64(obs.bits);
        }
    }
}

std::vector<word::WordRunTrace> get_word_traces(Reader& r) {
    std::vector<word::WordRunTrace> traces;
    const std::size_t n = r.count();
    traces.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        word::WordRunTrace trace;
        trace.detected = r.u8() != 0;
        const std::size_t reads = r.count();
        trace.failing_reads.reserve(reads);
        for (std::size_t j = 0; j < reads; ++j) {
            word::WordReadSite read;
            read.background = r.i32();
            read.site = get_read_site(r);
            trace.failing_reads.push_back(read);
        }
        const std::size_t observations = r.count();
        trace.failing_observations.reserve(observations);
        for (std::size_t j = 0; j < observations; ++j) {
            word::WordObservation obs;
            obs.background = r.i32();
            obs.site = get_read_site(r);
            obs.word = r.i32();
            obs.bits = r.u64();
            trace.failing_observations.push_back(obs);
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

UniverseTag get_universe(Reader& r) {
    const std::uint8_t tag = r.u8();
    if (tag != static_cast<std::uint8_t>(UniverseTag::Bit) &&
        tag != static_cast<std::uint8_t>(UniverseTag::Word))
        throw WireFormatError("bad universe tag");
    return static_cast<UniverseTag>(tag);
}

WantTag get_want(Reader& r) {
    const std::uint8_t tag = r.u8();
    if (tag < static_cast<std::uint8_t>(WantTag::Detects) ||
        tag > static_cast<std::uint8_t>(WantTag::Traces))
        throw WireFormatError("bad want tag");
    return static_cast<WantTag>(tag);
}

void put_header(Writer& w, MessageType type) {
    w.u8(kWireVersion);
    w.u8(static_cast<std::uint8_t>(type));
}

}  // namespace

// ------------------------------------------------------------- messages ----

std::vector<std::uint8_t> encode_query(const WireQuery& query) {
    Writer w;
    put_header(w, MessageType::Query);
    w.u64(query.id);
    w.u8(static_cast<std::uint8_t>(query.universe));
    w.u8(static_cast<std::uint8_t>(query.want));
    w.u64(query.range_begin);
    w.u64(query.range_end);
    put_test(w, query.test);
    if (query.universe == UniverseTag::Bit) {
        w.i32(query.bit_opts.memory_size);
        w.i32(query.bit_opts.max_any_expansion);
        put_bit_faults(w, query.bit_faults);
    } else {
        w.i32(query.word_opts.words);
        w.i32(query.word_opts.width);
        w.i32(query.word_opts.max_any_expansion);
        w.count(query.backgrounds.size());
        for (const word::Background& background : query.backgrounds) {
            w.i32(background.width);
            w.u64(background.bits);
        }
        put_word_faults(w, query.word_faults);
    }
    return w.take();
}

std::vector<std::uint8_t> encode_result(const WireResult& result) {
    Writer w;
    put_header(w, MessageType::Result);
    w.u64(result.id);
    w.u8(static_cast<std::uint8_t>(result.universe));
    w.u8(static_cast<std::uint8_t>(result.want));
    w.u64(result.range_begin);
    w.u64(result.range_end);
    switch (result.want) {
        case WantTag::Detects: put_verdicts(w, result.verdicts); break;
        case WantTag::DetectsAll: w.u8(result.all ? 1 : 0); break;
        case WantTag::Traces:
            if (result.universe == UniverseTag::Bit)
                put_bit_traces(w, result.traces);
            else
                put_word_traces(w, result.word_traces);
            break;
    }
    return w.take();
}

std::vector<std::uint8_t> encode_error(const WireFault& error) {
    Writer w;
    put_header(w, MessageType::Error);
    w.u64(error.id);
    w.count(error.message.size());
    for (const char c : error.message)
        w.u8(static_cast<std::uint8_t>(c));
    return w.take();
}

std::vector<std::uint8_t> encode_hello(const WireHello& hello) {
    Writer w;
    put_header(w, MessageType::Hello);
    w.u8(static_cast<std::uint8_t>(hello.max_frame_version));
    return w.take();
}

std::vector<std::uint8_t> encode_ping(const WirePing& ping) {
    Writer w;
    put_header(w, MessageType::Ping);
    w.u64(ping.nonce);
    return w.take();
}

std::vector<std::uint8_t> encode_pong(const WirePing& pong) {
    Writer w;
    put_header(w, MessageType::Pong);
    w.u64(pong.nonce);
    return w.take();
}

Message decode_message(std::span<const std::uint8_t> payload) {
    Reader r(payload);
    const std::uint8_t version = r.u8();
    if (version != kWireVersion)
        throw WireFormatError("wire version mismatch: got " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kWireVersion));
    const std::uint8_t type = r.u8();
    Message message;
    switch (type) {
        case static_cast<std::uint8_t>(MessageType::Query): {
            message.type = MessageType::Query;
            WireQuery& q = message.query;
            q.id = r.u64();
            q.universe = get_universe(r);
            q.want = get_want(r);
            q.range_begin = r.u64();
            q.range_end = r.u64();
            q.test = get_test(r);
            if (q.universe == UniverseTag::Bit) {
                q.bit_opts.memory_size = r.i32();
                q.bit_opts.max_any_expansion = r.i32();
                q.bit_faults = get_bit_faults(r);
            } else {
                q.word_opts.words = r.i32();
                q.word_opts.width = r.i32();
                q.word_opts.max_any_expansion = r.i32();
                const std::size_t backgrounds = r.count();
                q.backgrounds.reserve(backgrounds);
                for (std::size_t i = 0; i < backgrounds; ++i) {
                    word::Background background;
                    background.width = r.i32();
                    background.bits = r.u64();
                    q.backgrounds.push_back(background);
                }
                q.word_faults = get_word_faults(r);
            }
            if (q.range_end - q.range_begin !=
                (q.universe == UniverseTag::Bit ? q.bit_faults.size()
                                                : q.word_faults.size()))
                throw WireFormatError("range/population size mismatch");
            break;
        }
        case static_cast<std::uint8_t>(MessageType::Result): {
            message.type = MessageType::Result;
            WireResult& res = message.result;
            res.id = r.u64();
            res.universe = get_universe(r);
            res.want = get_want(r);
            res.range_begin = r.u64();
            res.range_end = r.u64();
            switch (res.want) {
                case WantTag::Detects:
                    res.verdicts = get_verdicts(r);
                    break;
                case WantTag::DetectsAll: res.all = r.u8() != 0; break;
                case WantTag::Traces:
                    if (res.universe == UniverseTag::Bit)
                        res.traces = get_bit_traces(r);
                    else
                        res.word_traces = get_word_traces(r);
                    break;
            }
            break;
        }
        case static_cast<std::uint8_t>(MessageType::Error): {
            message.type = MessageType::Error;
            message.error.id = r.u64();
            const std::size_t length = r.count();
            message.error.message.reserve(length);
            for (std::size_t i = 0; i < length; ++i)
                message.error.message.push_back(static_cast<char>(r.u8()));
            break;
        }
        case static_cast<std::uint8_t>(MessageType::Hello): {
            message.type = MessageType::Hello;
            const std::uint8_t offered = r.u8();
            if (offered < 1) throw WireFormatError("bad hello version");
            message.hello.max_frame_version = offered;
            break;
        }
        case static_cast<std::uint8_t>(MessageType::Ping): {
            message.type = MessageType::Ping;
            message.ping.nonce = r.u64();
            break;
        }
        case static_cast<std::uint8_t>(MessageType::Pong): {
            message.type = MessageType::Pong;
            message.ping.nonce = r.u64();
            break;
        }
        default: throw WireFormatError("bad message type");
    }
    r.expect_end();
    return message;
}

}  // namespace mtg::net
