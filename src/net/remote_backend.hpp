#pragma once

/// \file remote_backend.hpp
/// engine::RemoteBackend — the fourth Backend: fault simulation sharded
/// across a fleet of worker peers over sockets.
///
/// The coordinator splits every population into contiguous ranges aligned
/// to whole 504-lane W=8 blocks (engine::shard_ranges — the exact split
/// ShardedBackend rehearsed in-process), ships each range as a wire.hpp
/// Query to a peer, and merges the replies exactly like ShardedBackend
/// does: per-fault verdicts and traces concatenate by range position, the
/// all-detected verdict ANDs (with early exit — an escaping range marks
/// the remaining ones moot).
///
/// Fault tolerance — the part a single process never needed:
///   - Straggler re-dispatch: a range in flight longer than
///     `straggler_timeout_ms` becomes eligible for dispatch to a second
///     idle peer. Results are deterministic, so either copy is correct:
///     duplicate replies resolve first-wins and the loser is dropped.
///     The slow peer is NOT killed — if it answers eventually (even
///     during a later query), its reply is matched by id and discarded
///     when stale.
///   - Dead peers: a closed, errored or corrupt connection (including a
///     worker that replies with garbage or a truncated frame) marks the
///     peer dead; its un-replied ranges go back to the pending queue. The
///     query fails with std::runtime_error only when every peer is dead
///     with work outstanding.
///
/// One execute runs at a time (Backend::const methods serialize on an
/// internal mutex); each peer connection gets a persistent receiver
/// thread that routes replies by query id, so a reply from a past
/// re-dispatched query can never desynchronize the stream.

#include <memory>
#include <vector>

#include "engine/backend.hpp"

namespace mtg::engine {

/// Coordinator policy knobs.
struct RemoteOptions {
    /// Ranges per peer the population splits into (more ranges = finer
    /// re-dispatch granularity and better load balance, more framing
    /// overhead). The effective shard count is peers × ranges_per_peer,
    /// capped by the number of 504-lane blocks.
    int ranges_per_peer{2};
    /// Age after which an in-flight range may be duplicated onto another
    /// idle peer.
    int straggler_timeout_ms{1000};
};

/// Builds a RemoteBackend over connected peer sockets (ownership of the
/// fds transfers). Peers normally come from net::LoopbackFleet::take_fds()
/// (same-process CI fleet) or net::tcp_connect (march_tool fleet).
[[nodiscard]] std::unique_ptr<Backend> make_remote_backend(
    std::vector<int> peer_fds, const RemoteOptions& options = {});

}  // namespace mtg::engine
