#pragma once

/// \file remote_backend.hpp
/// engine::RemoteBackend — the fourth Backend: fault simulation sharded
/// across a *supervised* fleet of worker peers over sockets.
///
/// The coordinator splits every population into contiguous ranges aligned
/// to whole 504-lane W=8 blocks (engine::shard_ranges — the exact split
/// ShardedBackend rehearsed in-process), ships each range as a wire.hpp
/// Query to a peer, and merges the replies exactly like ShardedBackend
/// does: per-fault verdicts and traces concatenate by range position, the
/// all-detected verdict ANDs (with early exit — an escaping range marks
/// the remaining ones moot).
///
/// Peer lifecycle — every peer runs the state machine
///
///     Alive ──(pong overdue)──► Suspect ──(pong older still)──► Dead
///       ▲  ◄──(pong arrives)──────┘                              │
///       │                                                        ▼
///       └──(connect + Hello succeed)──────────────────── Reconnecting
///
/// driven by a supervisor thread: Ping/Pong heartbeats age peers into
/// Suspect (no new dispatches; in-flight replies still accepted) and
/// Dead (connection closed, owing ranges requeued); Dead peers with a
/// connect factory enter Reconnecting on a capped exponential backoff
/// with deterministic seeded jitter, and a revived peer rejoins range
/// scheduling mid-query. Receiver errors (closed/corrupt/garbage frames)
/// short-circuit straight to Dead.
///
/// Fault tolerance during a query:
///   - Straggler re-dispatch: a range in flight longer than
///     `straggler_timeout_ms` becomes eligible for dispatch to a second
///     idle peer. Results are deterministic, so either copy is correct:
///     duplicate replies resolve first-wins and the loser is dropped.
///     The slow peer is NOT killed — if it answers eventually (even
///     during a later query), its reply is matched by id and discarded
///     when stale.
///   - Deadline budgets: a query older than `query_deadline_ms` stops
///     waiting on the fleet; what happens to its unanswered ranges is the
///     DegradePolicy's call.
///   - Graceful local degradation: with DegradePolicy::DegradeLocal the
///     coordinator routes pending/orphaned ranges through a local
///     PackedBackend "peer of last resort" — the same evaluate_query a
///     worker runs, so results stay bit-identical by construction — when
///     every peer is dead beyond revival or the deadline has passed.
///     FailFast preserves the PR 6 behaviour: throw.
///
/// One execute runs at a time (Backend::const methods serialize on an
/// internal mutex); each peer connection gets a persistent receiver
/// thread that routes replies by query id, so a reply from a past
/// re-dispatched query can never desynchronize the stream.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/backend.hpp"

namespace mtg::engine {

/// What to do with ranges the fleet cannot answer (all peers dead beyond
/// revival, or the query deadline exhausted).
enum class DegradePolicy {
    FailFast,      ///< throw std::runtime_error (the PR 6 behaviour)
    DegradeLocal,  ///< evaluate locally on a PackedBackend, bit-identical
};

/// Coordinator policy knobs.
struct RemoteOptions {
    /// Ranges per peer the population splits into (more ranges = finer
    /// re-dispatch granularity and better load balance, more framing
    /// overhead). The effective shard count is peers × ranges_per_peer,
    /// capped by the number of 504-lane blocks.
    int ranges_per_peer{2};
    /// Age after which an in-flight range may be duplicated onto another
    /// idle peer.
    int straggler_timeout_ms{1000};
    /// Wall-clock budget for one query; past it, unanswered ranges fall
    /// to the DegradePolicy. 0 = unlimited.
    int query_deadline_ms{0};
    DegradePolicy degrade{DegradePolicy::FailFast};
    /// Heartbeat cadence: a Ping goes to every Alive/Suspect peer this
    /// often, and pong age drives the lifecycle below. 0 disables
    /// heartbeats (peers die only on receiver errors).
    int heartbeat_interval_ms{500};
    int suspect_after_ms{1500};  ///< pong older than this → Suspect
    int dead_after_ms{3000};     ///< pong older than this → Dead
    /// Reconnect backoff: attempt k waits
    /// min(backoff_ms << k, backoff_max_ms) plus deterministic jitter
    /// from `backoff_seed` (SplitMix64 — no wall-clock randomness, so
    /// chaos schedules replay exactly).
    int reconnect_backoff_ms{50};
    int reconnect_backoff_max_ms{2000};
    std::uint64_t backoff_seed{1};
    /// Timeout for (re)connect attempts and the Hello reply.
    int connect_timeout_ms{2000};
    /// Frame version policy: 0 negotiates the highest both ends speak via
    /// the Hello exchange; 1 pins bare v1 frames and skips the Hello
    /// entirely (for pre-negotiation peers).
    int frame_version{0};
    /// Frame payload cap applied to every peer channel (0 = the default
    /// net::kMaxFrameBytes, 64 MiB). Raise it when Traces /
    /// DictionarySweep replies for large word memories exceed the
    /// default — the serving workers must raise WorkerHooks::
    /// max_frame_bytes to match, or their sends fail and the peers die.
    /// Oversized length prefixes beyond the configured cap are still
    /// rejected as Corrupt.
    std::uint32_t max_frame_bytes{0};
    /// Mid-frame idle-progress bound applied to every peer channel
    /// (FrameChannel::set_mid_frame_idle_ms): 0 keeps the 30 s default,
    /// negative disables it. The chaos harness shrinks this so a
    /// byte-dribbling peer is declared Corrupt (and its ranges
    /// re-dispatched) quickly instead of wedging the receiver.
    int mid_frame_idle_ms{0};
};

/// One peer: an already-connected socket, a factory to (re)establish the
/// connection, or both. With only `fd`, the peer is dead for good once
/// its connection fails (the PR 6 behaviour). With `connect`, the
/// supervisor revives it on backoff — `fd < 0` means the first
/// connection is made by the supervisor too.
struct PeerConfig {
    int fd{-1};
    std::function<int()> connect;
};

/// Builds a RemoteBackend over connected peer sockets (ownership of the
/// fds transfers). Peers normally come from net::LoopbackFleet::take_fds()
/// (same-process CI fleet) or net::tcp_connect (march_tool fleet).
[[nodiscard]] std::unique_ptr<Backend> make_remote_backend(
    std::vector<int> peer_fds, const RemoteOptions& options = {});

/// Same, from full peer configs (reconnect factories enabled).
[[nodiscard]] std::unique_ptr<Backend> make_remote_backend(
    std::vector<PeerConfig> peers, const RemoteOptions& options = {});

}  // namespace mtg::engine
