#include "net/chaos.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "net/remote_backend.hpp"
#include "net/worker.hpp"
#include "util/rng.hpp"
#include "word/background.hpp"

namespace mtg::net {

namespace {

/// The workload every chaos cell replays: big enough that the bit
/// population spans multiple 504-lane ranges (so re-dispatch and revival
/// actually move ranges between peers), small enough that a CI battery of
/// seeds stays cheap.
constexpr sim::RunOptions kBitOpts{.memory_size = 24,
                                   .max_any_expansion = 6};
const std::vector<fault::FaultKind> kBitKinds = {fault::FaultKind::CfidUp0};
const std::vector<fault::FaultKind> kWordKinds = {fault::FaultKind::CfidUp1};

word::WordRunOptions word_opts() {
    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 4;
    opts.max_any_expansion = 4;
    return opts;
}

bool bit_traces_eq(const std::vector<sim::RunTrace>& a,
                   const std::vector<sim::RunTrace>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].detected != b[i].detected ||
            a[i].failing_reads != b[i].failing_reads ||
            a[i].failing_observations != b[i].failing_observations)
            return false;
    return true;
}

}  // namespace

const char* chaos_kind_name(ChaosKind kind) {
    switch (kind) {
        case ChaosKind::Kill: return "kill";
        case ChaosKind::Delay: return "delay";
        case ChaosKind::Garbage: return "garbage";
        case ChaosKind::Truncate: return "truncate";
        case ChaosKind::Flap: return "flap";
        case ChaosKind::Dribble: return "dribble";
    }
    return "?";
}

std::vector<ChaosKind> parse_chaos_kinds(const std::string& csv) {
    if (csv == "all")
        return {ChaosKind::Kill,     ChaosKind::Delay, ChaosKind::Garbage,
                ChaosKind::Truncate, ChaosKind::Flap,  ChaosKind::Dribble};
    std::vector<ChaosKind> kinds;
    std::stringstream stream(csv);
    std::string token;
    while (std::getline(stream, token, ',')) {
        if (token == "kill") kinds.push_back(ChaosKind::Kill);
        else if (token == "delay") kinds.push_back(ChaosKind::Delay);
        else if (token == "garbage") kinds.push_back(ChaosKind::Garbage);
        else if (token == "truncate") kinds.push_back(ChaosKind::Truncate);
        else if (token == "flap") kinds.push_back(ChaosKind::Flap);
        else if (token == "dribble") kinds.push_back(ChaosKind::Dribble);
        else
            throw std::runtime_error("unknown chaos kind: " + token +
                                     " (kill|delay|garbage|truncate|flap"
                                     "|dribble|all)");
    }
    if (kinds.empty()) throw std::runtime_error("empty chaos kind list");
    return kinds;
}

ChaosSchedule ChaosSchedule::generate(std::uint64_t seed, int peers,
                                      const std::vector<ChaosKind>& kinds) {
    if (peers < 1) throw std::runtime_error("chaos needs >= 1 peer");
    if (kinds.empty()) throw std::runtime_error("empty chaos kind list");
    ChaosSchedule schedule;
    schedule.seed = seed;
    // Fold the peer count into the stream so (seed, 2 peers) and
    // (seed, 4 peers) are independent draws.
    SplitMix64 rng(seed ^
                   (static_cast<std::uint64_t>(peers) * 0x9e3779b97f4a7c15ULL));
    schedule.events.reserve(static_cast<std::size_t>(peers));
    for (int p = 0; p < peers; ++p) {
        ChaosEvent event;
        event.peer = p;
        event.kind = kinds[rng.below(kinds.size())];
        event.after_queries = rng.range(1, 3);
        if (event.kind == ChaosKind::Delay)
            event.delay_ms = rng.range(20, 80);
        schedule.events.push_back(event);
    }
    return schedule;
}

std::string ChaosSchedule::describe() const {
    std::ostringstream out;
    out << "seed " << seed << ":";
    for (const ChaosEvent& event : events) {
        out << " peer" << event.peer << "=" << chaos_kind_name(event.kind);
        if (event.kind == ChaosKind::Delay)
            out << "(" << event.delay_ms << "ms)";
        else
            out << "@q" << event.after_queries;
    }
    return out.str();
}

ChaosReport run_chaos(const march::MarchTest& test,
                      const ChaosConfig& config) {
    const ChaosSchedule schedule =
        ChaosSchedule::generate(config.seed, config.peers, config.kinds);
    ChaosReport report;
    report.schedule = schedule.describe();

    // Translate the schedule into worker hooks. Flapped peers reconnect
    // with clean hooks (the event fires once), everything else is final.
    std::vector<WorkerHooks> hooks(
        static_cast<std::size_t>(config.peers));
    for (const ChaosEvent& event : schedule.events) {
        WorkerHooks& hook = hooks[static_cast<std::size_t>(event.peer)];
        switch (event.kind) {
            case ChaosKind::Kill:
                hook.die_after_queries = event.after_queries;
                break;
            case ChaosKind::Delay: hook.delay_ms = event.delay_ms; break;
            case ChaosKind::Garbage:
                hook.garbage_after_queries = event.after_queries;
                break;
            case ChaosKind::Truncate:
                hook.truncate_after_queries = event.after_queries;
                break;
            case ChaosKind::Flap:
                hook.flap_after_queries = event.after_queries;
                break;
            case ChaosKind::Dribble:
                hook.dribble_after_queries = event.after_queries;
                // Stall well past the harness's 100 ms idle bound but not
                // so long that an un-bounded receiver wedges the battery.
                hook.dribble_stall_ms = 400;
                break;
        }
    }
    LoopbackFleet fleet(config.peers, hooks);

    std::vector<int> fds = fleet.take_fds();
    std::vector<engine::PeerConfig> peer_configs;
    peer_configs.reserve(fds.size());
    for (const ChaosEvent& event : schedule.events) {
        engine::PeerConfig peer;
        peer.fd = fds[static_cast<std::size_t>(event.peer)];
        if (event.kind == ChaosKind::Flap)
            peer.connect = fleet.reconnector(event.peer);
        peer_configs.push_back(std::move(peer));
    }

    // Aggressive supervision so schedules resolve fast, DegradeLocal so
    // even an all-peers-dead schedule completes — and must still match.
    engine::RemoteOptions options;
    options.straggler_timeout_ms = 100;
    options.heartbeat_interval_ms = 50;
    options.suspect_after_ms = 150;
    options.dead_after_ms = 600;
    options.reconnect_backoff_ms = 10;
    options.reconnect_backoff_max_ms = 100;
    options.backoff_seed = config.seed;
    options.degrade = engine::DegradePolicy::DegradeLocal;
    // Small idle bound so a dribbling peer is declared Corrupt (and its
    // ranges re-dispatched) within the harness's time budget.
    options.mid_frame_idle_ms = 100;

    {
        const engine::Engine remote(
            engine::make_remote_backend(std::move(peer_configs), options));
        const engine::Engine packed;
        const auto word_backgrounds =
            word::counting_backgrounds(word_opts().width);

        const auto check = [&report](bool equal, const char* label) {
            ++report.checks;
            if (!equal) {
                report.ok = false;
                report.mismatches.emplace_back(label);
            }
        };

        engine::Query query;
        query.test = test;
        query.universe = engine::BitUniverse{kBitOpts};
        query.kinds = kBitKinds;
        for (const engine::Want want :
             {engine::Want::Detects, engine::Want::DetectsAll,
              engine::Want::Traces}) {
            query.want = want;
            const engine::Result got = remote.run(query);
            const engine::Result ref = packed.run(query);
            check(got.detected == ref.detected && got.all == ref.all &&
                      bit_traces_eq(got.traces, ref.traces),
                  want == engine::Want::Detects      ? "bit detects"
                  : want == engine::Want::DetectsAll ? "bit detects_all"
                                                     : "bit traces");
        }
        {
            const engine::Result got =
                remote.dictionary_sweep(test, kBitKinds, kBitOpts);
            const engine::Result ref =
                packed.dictionary_sweep(test, kBitKinds, kBitOpts);
            check(got.instances == ref.instances &&
                      bit_traces_eq(got.traces, ref.traces),
                  "bit dictionary sweep");
        }

        query.universe = engine::WordUniverse{word_backgrounds, word_opts()};
        query.kinds = kWordKinds;
        for (const engine::Want want :
             {engine::Want::Detects, engine::Want::DetectsAll,
              engine::Want::Traces}) {
            query.want = want;
            const engine::Result got = remote.run(query);
            const engine::Result ref = packed.run(query);
            check(got.detected == ref.detected && got.all == ref.all &&
                      got.word_traces == ref.word_traces,
                  want == engine::Want::Detects      ? "word detects"
                  : want == engine::Want::DetectsAll ? "word detects_all"
                                                     : "word traces");
        }
        {
            const engine::Result got = remote.dictionary_sweep(
                test, word_backgrounds, kWordKinds, word_opts());
            const engine::Result ref = packed.dictionary_sweep(
                test, word_backgrounds, kWordKinds, word_opts());
            check(got.instances == ref.instances &&
                      got.word_traces == ref.word_traces,
                  "word dictionary sweep");
        }

        report.connections.reserve(static_cast<std::size_t>(config.peers));
        for (int p = 0; p < config.peers; ++p)
            report.connections.push_back(fleet.connection_count(p));
    }  // the backend (and its supervisor) must die before the fleet

    return report;
}

}  // namespace mtg::net
