#pragma once

/// \file crc32c.hpp
/// CRC32C (Castagnoli, reflected polynomial 0x1EDC6F41) — the checksum
/// the wire v2 frame trailer carries so a corrupted frame is caught at
/// the framing layer, before the strict payload decoder ever runs.
///
/// The implementation dispatches once per process between a slice-by-8
/// software kernel and the SSE4.2 crc32 instruction (the same
/// CPUID-probe-once pattern the lane kernels use); both produce
/// identical values, so frames checksummed on any host verify on any
/// other.

#include <cstdint>
#include <span>

namespace mtg::net {

/// CRC32C of `bytes`, optionally continuing from a previous value
/// (pass the prior return value as `crc` to checksum in pieces).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                                   std::uint32_t crc = 0);

/// True when the SSE4.2 hardware path is active (exposed for tests,
/// which cross-check it against the software kernel).
[[nodiscard]] bool crc32c_hardware_active();

/// The software kernel, always available — the differential reference
/// for the hardware path.
[[nodiscard]] std::uint32_t crc32c_software(std::span<const std::uint8_t> bytes,
                                            std::uint32_t crc = 0);

}  // namespace mtg::net
