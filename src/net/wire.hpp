#pragma once

/// \file wire.hpp
/// Versioned binary wire format for shard queries and results — the
/// serialization layer of the multi-host transport.
///
/// Every message travels as one length-prefixed frame (see framing.hpp);
/// this file defines the *payload* encoding. A payload is
///
///   [u8 version][u8 message type][body ...]
///
/// with all multi-byte integers little-endian. Three message types exist:
///
///   Query   — (test, universe, range, want) plus the population slice of
///             the range: the coordinator ships the concrete faults, so a
///             worker is completely stateless (no shared placement code
///             version to keep in sync across a fleet).
///   Result  — the verdict for one range, shaped by the query's want:
///             per-fault verdict bits packed into 64-bit masks (the same
///             lane-mask currency the packed kernels reduce in), one
///             all-detected byte, or serialized guaranteed traces.
///   Error   — a worker-side failure description; the coordinator treats
///             it like a dead peer and re-dispatches the range.
///   Hello   — frame-version negotiation: the coordinator opens every
///             connection with Hello{max frame version it speaks}; the
///             worker replies Hello{min(offered, own max)} and both ends
///             switch FrameChannel to the agreed version (v2 = CRC32C
///             trailer, see framing.hpp). Hello frames themselves always
///             travel as v1 so any version can parse them. A worker that
///             receives a Query as its first message is talking to a v1
///             coordinator and simply serves v1 — old peers stay served.
///   Ping    — coordinator heartbeat probe carrying a nonce; answered
///   Pong    — immediately by the worker, echoing the nonce. The peer
///             supervisor uses pong age to drive the Alive → Suspect →
///             Dead lifecycle. Pings are not queries: hooks and query
///             counters ignore them.
///
/// Both fault universes are covered: a Query carries a universe tag and
/// either (RunOptions + InjectedFault slice) or (WordRunOptions +
/// backgrounds + InjectedBitFault slice). Query ids are opaque u64s chosen
/// by the coordinator; a Result echoes the id and range of its Query so
/// replies can be matched across re-dispatches (duplicate replies carry
/// the same id — first one wins, the rest are dropped).
///
/// Decoding is strict: any truncation, trailing garbage, unknown tag or
/// out-of-range count throws WireFormatError, which the transport layers
/// convert into "corrupt peer" (connection closed, range re-dispatched).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/march_runner.hpp"
#include "word/word_march.hpp"
#include "word/word_trace.hpp"

namespace mtg::net {

/// Bumped on any incompatible payload change; peers reject mismatches.
inline constexpr std::uint8_t kWireVersion = 1;

/// Highest *frame* version this build speaks (see framing.hpp): 2 adds
/// the CRC32C trailer. Negotiated per connection by the Hello exchange;
/// payload encoding is version 1 in both frame formats.
inline constexpr int kMaxFrameVersion = 2;

/// Thrown by the decoder on any malformed payload.
class WireFormatError : public std::runtime_error {
public:
    explicit WireFormatError(const std::string& what)
        : std::runtime_error(what) {}
};

enum class MessageType : std::uint8_t {
    Query = 1,
    Result = 2,
    Error = 3,
    Hello = 4,
    Ping = 5,
    Pong = 6,
};
enum class UniverseTag : std::uint8_t { Bit = 1, Word = 2 };

/// Verdict shape on the wire. The Engine's four Want values map onto
/// three: DictionarySweep is Traces over pre-placed instances (the
/// placement happens coordinator-side, so the wire never needs to know).
enum class WantTag : std::uint8_t { Detects = 1, DetectsAll = 2, Traces = 3 };

/// One shard query: evaluate `want` for the population slice
/// [range_begin, range_end) shipped in `bit_faults` / `word_faults`.
struct WireQuery {
    std::uint64_t id{0};
    UniverseTag universe{UniverseTag::Bit};
    WantTag want{WantTag::Detects};
    std::uint64_t range_begin{0};
    std::uint64_t range_end{0};
    march::MarchTest test;
    // Bit universe:
    sim::RunOptions bit_opts{};
    std::vector<sim::InjectedFault> bit_faults;
    // Word universe:
    word::WordRunOptions word_opts{};
    std::vector<word::Background> backgrounds;
    std::vector<word::InjectedBitFault> word_faults;
};

/// One shard result, echoing the query's id/universe/want/range.
struct WireResult {
    std::uint64_t id{0};
    UniverseTag universe{UniverseTag::Bit};
    WantTag want{WantTag::Detects};
    std::uint64_t range_begin{0};
    std::uint64_t range_end{0};
    std::vector<bool> verdicts;  ///< Detects (packed as 64-bit masks)
    bool all{true};              ///< DetectsAll
    std::vector<sim::RunTrace> traces;            ///< Traces, bit universe
    std::vector<word::WordRunTrace> word_traces;  ///< Traces, word universe
};

/// A worker-side failure for query `id`.
struct WireFault {
    std::uint64_t id{0};
    std::string message;
};

/// Frame-version negotiation (both directions: offer and acceptance).
struct WireHello {
    int max_frame_version{kMaxFrameVersion};
};

/// Heartbeat probe / reply; the nonce matches a Pong to its Ping.
struct WirePing {
    std::uint64_t nonce{0};
};

/// A decoded payload: `type` selects which member is meaningful.
struct Message {
    MessageType type{MessageType::Error};
    WireQuery query;
    WireResult result;
    WireFault error;
    WireHello hello;
    WirePing ping;  ///< Ping and Pong both land here
};

[[nodiscard]] std::vector<std::uint8_t> encode_query(const WireQuery& query);
[[nodiscard]] std::vector<std::uint8_t> encode_result(const WireResult& result);
[[nodiscard]] std::vector<std::uint8_t> encode_error(const WireFault& error);
[[nodiscard]] std::vector<std::uint8_t> encode_hello(const WireHello& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_ping(const WirePing& ping);
[[nodiscard]] std::vector<std::uint8_t> encode_pong(const WirePing& pong);

/// Decodes one payload. Throws WireFormatError on version mismatch,
/// unknown tags, truncation or trailing bytes.
[[nodiscard]] Message decode_message(std::span<const std::uint8_t> payload);

}  // namespace mtg::net
