#pragma once

/// \file query_protocol.hpp
/// Wire protocol of the persistent query server (query_server.hpp): one
/// JSON object per line, both directions, over any stream socket.
///
/// The worker fleet's binary framing (wire.hpp) is built for bulk
/// shard traffic between trusted peers of the same build. The query
/// server's clients are the opposite: ad-hoc tools, scripts and replay
/// harnesses that want to type a request by hand and read the answer —
/// so the protocol is line-delimited JSON with a deliberately tiny
/// grammar (null / bool / 64-bit int / string / array / object; no
/// floats, no unicode escapes beyond \uXXXX pass-through of ASCII).
///
/// Request (one line):
///   {"id": 7, "op": "detects", "test": "MATS+", "kinds": "SAF,TF"}
///   {"id": 8, "op": "traces", "test": "{^(w0);^(r0,w1);v(r1,w0)}",
///    "universe": "word", "words": 8, "width": 8,
///    "backgrounds": "counting", "kinds": "CFid"}
///
/// Fields: `id` (caller-chosen echo tag), `op` ∈ detects | detects_all |
/// traces | sweep | stats | ping; `test` is a library name or March
/// syntax; `kinds` is a fault family/primitive CSV (parse_fault_kinds);
/// `universe` ∈ bit (default) | word; `n` (bit memory size), `words`,
/// `width`, `backgrounds` ∈ counting (default) | solid, `max_any`
/// override the universe defaults; `class` ∈ interactive | bulk
/// overrides the admission class the server would infer from the op.
///
/// Response (one line): {"id": 7, "ok": true, ...} with per-op payload —
/// `all` + `detected` (hex bitmask, bit i = fault i, LSB-first nibbles) +
/// `count` for detects; traces/sweep add `traces` (compact per-fault
/// objects) and sweep adds `instances` (FaultInstance names aligned with
/// traces). Malformed input answers {"id": ..., "ok": false, "error":
/// "..."} and never kills the connection.
///
/// Everything here is deterministic: rendering a Result is a pure
/// function, so a differential harness can compare server output against
/// a locally-evaluated Engine byte for byte.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace mtg::net {

// ---- minimal JSON ---------------------------------------------------------

/// A parsed JSON value. Numbers are 64-bit integers only — the protocol
/// has no real-valued fields, and refusing floats keeps rendering
/// byte-deterministic across platforms.
class Json {
public:
    enum class Kind { Null, Bool, Int, String, Array, Object };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(std::int64_t i) : kind_(Kind::Int), int_(i) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Json(const char* s) : Json(std::string(s)) {}

    [[nodiscard]] static Json array();
    [[nodiscard]] static Json object();

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }

    /// Typed accessors; throw std::runtime_error on kind mismatch (the
    /// parse_request error path turns that into an "ok": false reply).
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<Json>& items() const;

    /// Object field, or nullptr when absent (or not an object).
    [[nodiscard]] const Json* find(const std::string& key) const;

    void push_back(Json value);              ///< array append
    void set(const std::string& key, Json);  ///< object insert/overwrite

    /// Compact canonical dump: no whitespace, object keys in the order
    /// they were set, minimal escapes. parse(dump(x)) == x.
    [[nodiscard]] std::string dump() const;

    /// Strict parse of exactly one JSON value (leading/trailing blanks
    /// allowed). Throws std::runtime_error with a position on error.
    [[nodiscard]] static Json parse(const std::string& text);

private:
    Kind kind_{Kind::Null};
    bool bool_{false};
    std::int64_t int_{0};
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

// ---- requests -------------------------------------------------------------

enum class QueryOp { Detects, DetectsAll, Traces, Sweep, Stats, Ping };

/// Admission class (see query_server.hpp): Interactive requests are
/// answered from a reserved executor lane so a DictionarySweep storm can
/// never starve them.
enum class QueryClass { Interactive, Bulk };

/// One decoded client request.
struct QueryRequest {
    std::int64_t id{0};
    QueryOp op{QueryOp::Ping};
    std::string test;          ///< library name or March syntax
    std::string kinds;         ///< fault CSV (parse_fault_kinds grammar)
    bool word{false};          ///< word universe instead of bit
    int memory_size{0};        ///< bit universe; 0 = RunOptions default
    int words{0};              ///< word universe; 0 = default
    int width{0};              ///< word universe; 0 = default
    std::string backgrounds;   ///< "counting" (default) | "solid"
    int max_any{0};            ///< 0 = universe default
    std::optional<QueryClass> klass;  ///< explicit admission override
};

/// Decodes one request line. Throws std::runtime_error (with a
/// human-readable reason) on anything malformed: bad JSON, wrong types,
/// unknown op, missing test. The `id` of a malformed line is still
/// recovered when possible so the error reply can echo it.
[[nodiscard]] QueryRequest parse_request(const std::string& line);

/// Best-effort id extraction from a malformed line (0 when hopeless).
[[nodiscard]] std::int64_t salvage_request_id(const std::string& line);

/// Renders a request back to its wire line (no trailing newline) — the
/// client side of the protocol, and the replay format.
[[nodiscard]] std::string render_request(const QueryRequest& request);

/// Resolves the request into an executable Engine query: test lookup
/// (library name first, March syntax fallback), kind expansion, universe
/// construction. Throws std::invalid_argument / std::runtime_error on
/// unknown tests, kinds, or invalid dimensions. Stats/Ping requests have
/// no query — calling this on them throws.
[[nodiscard]] engine::Query to_engine_query(const QueryRequest& request);

/// The admission class: the explicit override when present, otherwise
/// Detects / DetectsAll / Stats / Ping are Interactive and Traces /
/// Sweep are Bulk.
[[nodiscard]] QueryClass classify(const QueryRequest& request);

/// Coalescing identity of a request: two requests with equal keys are
/// answered by one backend run. Built from the *resolved* query —
/// canonical test text, universe dimensions, want, canonical kinds — so
/// "MATS+" and its spelled-out March syntax coalesce, as do permuted
/// kind lists. Stats/Ping never coalesce (empty key).
[[nodiscard]] std::string coalesce_key(const QueryRequest& request,
                                       const engine::Query& query);

// ---- responses ------------------------------------------------------------

/// Renders the per-op success reply (no trailing newline). Deterministic:
/// byte-equal across runs and hosts for equal Results.
[[nodiscard]] std::string render_result(std::int64_t id,
                                        const engine::Result& result);

/// {"id": id, "ok": false, "error": message}
[[nodiscard]] std::string render_error(std::int64_t id,
                                       const std::string& message);

/// Hex rendering of a verdict bitmask: bit i of the mask is detected[i];
/// nibble j (hex digit j of the string) holds bits [4j, 4j+4), LSB
/// first. Empty vector -> "".
[[nodiscard]] std::string detected_mask(const std::vector<bool>& detected);

// ---- line transport -------------------------------------------------------

/// Newline-delimited text over a stream socket. Owns the fd. The read
/// side buffers internally, so interleaved lines of any size up to
/// `max_line_bytes` arrive intact; a line beyond the bound poisons the
/// stream (Overflow) — the peer is not speaking the protocol.
///
/// Full-duplex like FrameChannel: one reader thread plus one writer
/// thread is the supported concurrency (the server's session reader vs.
/// executor replies — writes are additionally serialised by the caller).
class LineChannel {
public:
    static constexpr std::size_t kMaxLineBytes = 8u << 20;

    explicit LineChannel(int fd);
    ~LineChannel();
    LineChannel(LineChannel&& other) noexcept;
    LineChannel& operator=(LineChannel&& other) noexcept;
    LineChannel(const LineChannel&) = delete;
    LineChannel& operator=(const LineChannel&) = delete;

    enum class ReadStatus { Ok, Timeout, Closed, Overflow };

    /// Reads one line (without the newline) into `line`. `timeout_ms < 0`
    /// blocks until a line, EOF, or shutdown().
    [[nodiscard]] ReadStatus read_line(std::string& line, int timeout_ms);

    /// Writes `line` plus a newline. False when the connection is dead.
    [[nodiscard]] bool write_line(const std::string& line);

    /// Wakes a blocked read_line()/write_line() from another thread.
    void shutdown();

    [[nodiscard]] int fd() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }

private:
    int fd_{-1};
    std::string buffer_;
};

}  // namespace mtg::net
