#include "net/crc32c.hpp"

#include <array>
#include <cstddef>

namespace mtg::net {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41

/// 8 tables of 256 entries: table[0] is the classic byte-at-a-time
/// table, table[k] advances a byte through k additional zero bytes —
/// together they let the software kernel eat 8 bytes per iteration.
struct Tables {
    std::uint32_t t[8][256];
};

constexpr Tables build_tables() {
    Tables tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
        tables.t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            tables.t[k][i] =
                (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xffu];
    return tables;
}

constexpr Tables kTables = build_tables();

#if defined(__GNUC__) && defined(__x86_64__)
#define MTG_CRC32C_HW 1
__attribute__((target("sse4.2"))) std::uint32_t crc32c_sse42(
    std::span<const std::uint8_t> bytes, std::uint32_t crc) {
    std::uint64_t state = ~static_cast<std::uint64_t>(crc) & 0xffffffffull;
    const std::uint8_t* p = bytes.data();
    std::size_t n = bytes.size();
    while (n >= 8) {
        std::uint64_t chunk;
        __builtin_memcpy(&chunk, p, 8);
        state = __builtin_ia32_crc32di(state, chunk);
        p += 8;
        n -= 8;
    }
    std::uint32_t state32 = static_cast<std::uint32_t>(state);
    while (n > 0) {
        state32 = __builtin_ia32_crc32qi(state32, *p);
        ++p;
        --n;
    }
    return ~state32;
}

bool cpu_has_sse42() { return __builtin_cpu_supports("sse4.2") != 0; }
#else
#define MTG_CRC32C_HW 0
bool cpu_has_sse42() { return false; }
#endif

}  // namespace

std::uint32_t crc32c_software(std::span<const std::uint8_t> bytes,
                              std::uint32_t crc) {
    std::uint32_t state = ~crc;
    const std::uint8_t* p = bytes.data();
    std::size_t n = bytes.size();
    while (n >= 8) {
        std::uint64_t chunk;
        __builtin_memcpy(&chunk, p, 8);
        chunk ^= state;
        state = kTables.t[7][chunk & 0xffu] ^
                kTables.t[6][(chunk >> 8) & 0xffu] ^
                kTables.t[5][(chunk >> 16) & 0xffu] ^
                kTables.t[4][(chunk >> 24) & 0xffu] ^
                kTables.t[3][(chunk >> 32) & 0xffu] ^
                kTables.t[2][(chunk >> 40) & 0xffu] ^
                kTables.t[1][(chunk >> 48) & 0xffu] ^
                kTables.t[0][(chunk >> 56) & 0xffu];
        p += 8;
        n -= 8;
    }
    while (n > 0) {
        state = (state >> 8) ^ kTables.t[0][(state ^ *p) & 0xffu];
        ++p;
        --n;
    }
    return ~state;
}

bool crc32c_hardware_active() {
    static const bool active = cpu_has_sse42();
    return active;
}

std::uint32_t crc32c(std::span<const std::uint8_t> bytes, std::uint32_t crc) {
#if MTG_CRC32C_HW
    if (crc32c_hardware_active()) return crc32c_sse42(bytes, crc);
#endif
    return crc32c_software(bytes, crc);
}

}  // namespace mtg::net
