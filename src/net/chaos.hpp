#pragma once

/// \file chaos.hpp
/// Deterministic chaos harness for the supervised fleet transport.
///
/// A ChaosSchedule is generated from a seed: every peer of a
/// LoopbackFleet gets one failure-injection event (kill / delay /
/// garbage / truncate / flap) with seeded parameters. run_chaos() builds
/// the fleet under that schedule, points a supervised RemoteBackend with
/// DegradePolicy::DegradeLocal at it, runs the full query battery (both
/// universes × Detects / DetectsAll / Traces / dictionary sweep) and
/// checks the **chaos invariant**: every schedule — including ones that
/// kill every peer — must yield results bit-identical to a local
/// PackedBackend. Nothing here uses wall-clock randomness, so any
/// failing (seed, peers, kinds) triple replays exactly:
///
///     march_tool chaos "March C-" all 42 3
///
/// CI sweeps seeds {1..8} × peers {2, 4} over all kinds (plus one ASan
/// leg); tests/chaos_test.cpp runs a smaller battery of the same
/// harness.

#include <cstdint>
#include <string>
#include <vector>

#include "march/march_test.hpp"

namespace mtg::net {

/// The six injected failure modes (WorkerHooks knobs).
enum class ChaosKind : std::uint8_t {
    Kill,      ///< close the connection mid-query, never to return
    Delay,     ///< answer every query late (straggler)
    Garbage,   ///< reply with an undecodable frame, then close
    Truncate,  ///< reply with a lying length prefix, then close
    Flap,      ///< die mid-query but accept a reconnect (revivable peer)
    Dribble,   ///< start a reply frame, stall mid-payload, then close —
               ///< exercises the mid-frame idle-progress bound
};

[[nodiscard]] const char* chaos_kind_name(ChaosKind kind);

/// Parses "kill,delay,flap,dribble" (any order) or "all". Throws
/// std::runtime_error on an unknown name.
[[nodiscard]] std::vector<ChaosKind> parse_chaos_kinds(
    const std::string& csv);

/// One peer's failure event.
struct ChaosEvent {
    int peer{0};
    ChaosKind kind{ChaosKind::Kill};
    int after_queries{1};  ///< 1-based query index that triggers the event
    int delay_ms{0};       ///< Delay only
};

/// A reproducible failure plan: one event per peer, drawn from `kinds`
/// by a SplitMix64 stream seeded with `seed`.
struct ChaosSchedule {
    std::uint64_t seed{0};
    std::vector<ChaosEvent> events;

    [[nodiscard]] static ChaosSchedule generate(
        std::uint64_t seed, int peers, const std::vector<ChaosKind>& kinds);
    [[nodiscard]] std::string describe() const;
};

struct ChaosConfig {
    std::uint64_t seed{1};
    int peers{2};
    std::vector<ChaosKind> kinds{ChaosKind::Kill,     ChaosKind::Delay,
                                 ChaosKind::Garbage,  ChaosKind::Truncate,
                                 ChaosKind::Flap,     ChaosKind::Dribble};
};

struct ChaosReport {
    bool ok{true};
    int checks{0};  ///< oracle comparisons performed
    std::vector<std::string> mismatches;
    std::string schedule;  ///< human-readable event list
    /// Connections each peer accepted (1 = never reconnected). Flapped
    /// peers climb past 1 once the supervisor revives them.
    std::vector<int> connections;
};

/// Runs the chaos invariant check for one (test, seed, peers, kinds)
/// cell. Deterministic given the config; never throws on divergence —
/// the report carries the mismatches.
[[nodiscard]] ChaosReport run_chaos(const march::MarchTest& test,
                                    const ChaosConfig& config);

}  // namespace mtg::net
