#include "net/remote_backend.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/framing.hpp"
#include "net/wire.hpp"
#include "util/contracts.hpp"

namespace mtg::engine {

namespace {

using net::FrameChannel;
using net::Message;
using net::MessageType;
using net::UniverseTag;
using net::WantTag;
using net::WireQuery;
using net::WireResult;
using steady = std::chrono::steady_clock;

/// How often the dispatcher re-checks straggler ages / peer deaths while
/// waiting for replies.
constexpr auto kDispatchTick = std::chrono::milliseconds(20);

class RemoteBackend final : public Backend {
public:
    RemoteBackend(std::vector<int> fds, const RemoteOptions& options)
        : options_(options) {
        MTG_EXPECTS(!fds.empty());
        MTG_EXPECTS(options.ranges_per_peer >= 1);
        MTG_EXPECTS(options.straggler_timeout_ms >= 1);
        peers_.reserve(fds.size());
        for (const int fd : fds)
            peers_.push_back(std::make_unique<PeerState>(fd));
        for (std::size_t p = 0; p < peers_.size(); ++p)
            peers_[p]->receiver =
                std::thread([this, p] { receiver_loop(p); });
    }

    ~RemoteBackend() override {
        stop_.store(true, std::memory_order_relaxed);
        for (const auto& peer : peers_) peer->channel.shutdown();
        for (const auto& peer : peers_)
            if (peer->receiver.joinable()) peer->receiver.join();
    }

    [[nodiscard]] const char* name() const override { return "remote"; }

    // ------------------------------------------------------ bit universe --

    [[nodiscard]] std::vector<bool> detects(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Bit, WantTag::Detects, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.bit_opts = ctx.opts;
                query.bit_faults.assign(population.begin() + begin,
                                        population.begin() + end);
            });
        return merge_verdicts(results, population.size());
    }

    [[nodiscard]] bool detects_all(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Bit, WantTag::DetectsAll,
            ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.bit_opts = ctx.opts;
                query.bit_faults.assign(population.begin() + begin,
                                        population.begin() + end);
            });
        return merge_all(results);
    }

    [[nodiscard]] std::vector<sim::RunTrace> traces(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        auto results = execute(
            population.size(), UniverseTag::Bit, WantTag::Traces, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.bit_opts = ctx.opts;
                query.bit_faults.assign(population.begin() + begin,
                                        population.begin() + end);
            });
        std::vector<sim::RunTrace> merged;
        merged.reserve(population.size());
        for (WireResult& result : results)
            for (sim::RunTrace& trace : result.traces)
                merged.push_back(std::move(trace));
        return merged;
    }

    // ----------------------------------------------------- word universe --

    [[nodiscard]] std::vector<bool> detects(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Word, WantTag::Detects, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.word_opts = ctx.opts;
                query.backgrounds = ctx.backgrounds;
                query.word_faults.assign(population.begin() + begin,
                                         population.begin() + end);
            });
        return merge_verdicts(results, population.size());
    }

    [[nodiscard]] bool detects_all(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Word, WantTag::DetectsAll,
            ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.word_opts = ctx.opts;
                query.backgrounds = ctx.backgrounds;
                query.word_faults.assign(population.begin() + begin,
                                         population.begin() + end);
            });
        return merge_all(results);
    }

    [[nodiscard]] std::vector<word::WordRunTrace> traces(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        auto results = execute(
            population.size(), UniverseTag::Word, WantTag::Traces, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.word_opts = ctx.opts;
                query.backgrounds = ctx.backgrounds;
                query.word_faults.assign(population.begin() + begin,
                                         population.begin() + end);
            });
        std::vector<word::WordRunTrace> merged;
        merged.reserve(population.size());
        for (WireResult& result : results)
            for (word::WordRunTrace& trace : result.word_traces)
                merged.push_back(std::move(trace));
        return merged;
    }

private:
    struct PeerState {
        explicit PeerState(int fd) : channel(fd) {}
        FrameChannel channel;
        std::thread receiver;
        bool alive{true};    ///< guarded by mutex_
        int outstanding{0};  ///< queries sent, replies not yet routed
    };

    /// One range's lifecycle within an execute() call.
    struct Task {
        std::uint64_t id{0};
        std::size_t begin{0};
        std::size_t end{0};
        WantTag want{WantTag::Detects};
        UniverseTag universe{UniverseTag::Bit};
        std::vector<std::uint8_t> payload;  ///< encoded query, re-sendable
        bool done{false};
        std::vector<std::size_t> owing;  ///< peers owing a reply
        steady::time_point last_dispatch{};
        WireResult result;
    };

    RemoteOptions options_;
    mutable std::vector<std::unique_ptr<PeerState>> peers_;
    std::atomic<bool> stop_{false};

    mutable std::mutex exec_mutex_;  ///< one execute() at a time
    mutable std::mutex mutex_;       ///< peers / tasks / ids
    mutable std::condition_variable cv_;
    mutable std::uint64_t next_id_{1};
    mutable std::unordered_map<std::uint64_t, Task*> task_index_;

    // ----------------------------------------------------- receiver side --

    void receiver_loop(std::size_t peer_index) const {
        PeerState& peer = *peers_[peer_index];
        std::vector<std::uint8_t> payload;
        for (;;) {
            const FrameChannel::RecvStatus status =
                peer.channel.recv(payload, /*timeout_ms=*/100);
            if (stop_.load(std::memory_order_relaxed)) return;
            switch (status) {
                case FrameChannel::RecvStatus::Timeout: continue;
                case FrameChannel::RecvStatus::Ok:
                    if (!handle_frame(peer_index, payload)) {
                        mark_dead(peer_index);
                        return;
                    }
                    continue;
                case FrameChannel::RecvStatus::Closed:
                case FrameChannel::RecvStatus::Corrupt:
                    mark_dead(peer_index);
                    return;
            }
        }
    }

    /// Routes one frame from a peer. False = the peer is unusable
    /// (undecodable frame, protocol violation, worker-side error).
    [[nodiscard]] bool handle_frame(std::size_t peer_index,
                                    const std::vector<std::uint8_t>& payload) const {
        Message message;
        try {
            message = net::decode_message(payload);
        } catch (const net::WireFormatError&) {
            return false;
        }
        if (message.type != MessageType::Result)
            return false;  // worker Error reply == dead peer: re-dispatch

        const std::lock_guard<std::mutex> lock(mutex_);
        PeerState& peer = *peers_[peer_index];
        if (peer.outstanding > 0) --peer.outstanding;
        const auto it = task_index_.find(message.result.id);
        if (it != task_index_.end()) {
            Task& task = *it->second;
            std::erase(task.owing, peer_index);
            if (!task.done) {
                if (!result_matches(task, message.result)) return false;
                task.result = std::move(message.result);
                task.done = true;
            }
            // A duplicate reply for a done task is simply dropped:
            // results are deterministic, first-wins.
        }
        // Unknown id: a stale reply from an abandoned or earlier query —
        // the outstanding decrement above is all it was still good for.
        cv_.notify_all();
        return true;
    }

    /// Shape check: a reply that does not answer the question asked is a
    /// protocol violation, not a mergeable result.
    [[nodiscard]] static bool result_matches(const Task& task,
                                             const WireResult& result) {
        if (result.want != task.want || result.universe != task.universe ||
            result.range_begin != task.begin || result.range_end != task.end)
            return false;
        const std::size_t count = task.end - task.begin;
        switch (task.want) {
            case WantTag::Detects: return result.verdicts.size() == count;
            case WantTag::DetectsAll: return true;
            case WantTag::Traces:
                return (task.universe == UniverseTag::Bit
                            ? result.traces.size()
                            : result.word_traces.size()) == count;
        }
        return false;
    }

    void mark_dead(std::size_t peer_index) const {
        const std::lock_guard<std::mutex> lock(mutex_);
        mark_dead_locked(peer_index);
    }

    void mark_dead_locked(std::size_t peer_index) const {
        PeerState& peer = *peers_[peer_index];
        if (!peer.alive) return;
        peer.alive = false;
        peer.outstanding = 0;
        // Ranges this peer still owed fall back to pending (owing empty):
        // the dispatcher re-dispatches them to surviving peers.
        for (auto& [id, task] : task_index_)
            std::erase(task->owing, peer_index);
        cv_.notify_all();
    }

    // --------------------------------------------------- dispatcher side --

    /// Splits [0, total) into 504-lane-aligned ranges, ships each as a
    /// Query, and gathers results with straggler re-dispatch. Returns the
    /// completed tasks' results in range order; with want == DetectsAll an
    /// escaping range short-circuits and the abandoned tasks are omitted.
    template <typename FillQuery>
    [[nodiscard]] std::vector<WireResult> execute(
        std::size_t total, UniverseTag universe, WantTag want,
        const march::MarchTest& test, FillQuery&& fill) const {
        if (total == 0) return {};
        const std::lock_guard<std::mutex> exec_lock(exec_mutex_);

        // Build and register the tasks.
        std::vector<Task> tasks;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            int alive = 0;
            for (const auto& peer : peers_)
                if (peer->alive) ++alive;
            if (alive == 0)
                throw std::runtime_error(
                    "RemoteBackend: no live peers to dispatch to");
            const auto ranges = shard_ranges(
                total, std::max(1, alive * options_.ranges_per_peer));
            tasks.reserve(ranges.size());
            for (const auto& [begin, end] : ranges) {
                Task task;
                task.id = next_id_++;
                task.begin = begin;
                task.end = end;
                task.want = want;
                task.universe = universe;
                WireQuery query;
                query.id = task.id;
                query.universe = universe;
                query.want = want;
                query.range_begin = begin;
                query.range_end = end;
                query.test = test;
                fill(begin, end, query);
                task.payload = net::encode_query(query);
                tasks.push_back(std::move(task));
            }
            for (Task& task : tasks) task_index_.emplace(task.id, &task);
        }
        // Always unregister, even when throwing: task_index_ must never
        // outlive the tasks vector it points into.
        struct Deregister {
            const RemoteBackend* backend;
            std::vector<Task>* tasks;
            ~Deregister() {
                const std::lock_guard<std::mutex> lock(backend->mutex_);
                for (const Task& task : *tasks)
                    backend->task_index_.erase(task.id);
            }
        } deregister{this, &tasks};

        run_dispatch_loop(tasks, want);

        std::vector<WireResult> results;
        results.reserve(tasks.size());
        for (Task& task : tasks)
            if (task.done) results.push_back(std::move(task.result));
        return results;
    }

    void run_dispatch_loop(std::vector<Task>& tasks, WantTag want) const {
        const auto straggler_age =
            std::chrono::milliseconds(options_.straggler_timeout_ms);
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            bool all_done = true;
            for (const Task& task : tasks) {
                if (want == WantTag::DetectsAll && task.done &&
                    !task.result.all)
                    return;  // AND short-circuit: verdict is already false
                all_done = all_done && task.done;
            }
            if (all_done) return;

            // Hand pending and straggler-aged ranges to idle live peers.
            struct Send {
                std::size_t peer;
                Task* task;
            };
            std::vector<Send> sends;
            const auto now = steady::now();
            for (std::size_t p = 0; p < peers_.size(); ++p) {
                PeerState& peer = *peers_[p];
                if (!peer.alive || peer.outstanding > 0) continue;
                Task* chosen = nullptr;
                for (Task& task : tasks) {  // pending ranges first
                    if (!task.done && task.owing.empty()) {
                        chosen = &task;
                        break;
                    }
                }
                if (chosen == nullptr) {
                    // Straggler re-dispatch: duplicate the oldest range
                    // that has been in flight beyond the timeout. Either
                    // copy of the (deterministic) result will do.
                    for (Task& task : tasks) {
                        if (task.done || task.owing.empty()) continue;
                        if (now - task.last_dispatch < straggler_age)
                            continue;
                        if (chosen == nullptr ||
                            task.last_dispatch < chosen->last_dispatch)
                            chosen = &task;
                    }
                }
                if (chosen == nullptr) continue;
                // Commit before sending so the next idle peer in this
                // round sees the range as in flight.
                chosen->owing.push_back(p);
                chosen->last_dispatch = now;
                ++peer.outstanding;
                sends.push_back({p, chosen});
            }

            if (sends.empty()) {
                bool any_alive = false;
                bool any_in_flight = false;
                for (const auto& peer : peers_)
                    any_alive = any_alive || peer->alive;
                for (const Task& task : tasks)
                    any_in_flight = any_in_flight || (!task.done &&
                                                      !task.owing.empty());
                if (!any_alive)
                    throw std::runtime_error(
                        "RemoteBackend: all peers dead with ranges "
                        "unanswered");
                (void)any_in_flight;  // live peers remain: wait for them
                cv_.wait_for(lock, kDispatchTick);
                continue;
            }

            lock.unlock();
            for (const Send& send : sends) {
                if (!peers_[send.peer]->channel.send(send.task->payload)) {
                    const std::lock_guard<std::mutex> relock(mutex_);
                    mark_dead_locked(send.peer);
                }
            }
            lock.lock();
        }
    }

    // --------------------------------------------------------- merging ---

    [[nodiscard]] static std::vector<bool> merge_verdicts(
        const std::vector<WireResult>& results, std::size_t total) {
        std::vector<bool> merged;
        merged.reserve(total);
        for (const WireResult& result : results)
            merged.insert(merged.end(), result.verdicts.begin(),
                          result.verdicts.end());
        MTG_ENSURES(merged.size() == total);
        return merged;
    }

    [[nodiscard]] static bool merge_all(
        const std::vector<WireResult>& results) {
        for (const WireResult& result : results)
            if (!result.all) return false;
        return true;
    }
};

}  // namespace

std::unique_ptr<Backend> make_remote_backend(std::vector<int> peer_fds,
                                             const RemoteOptions& options) {
    return std::make_unique<RemoteBackend>(std::move(peer_fds), options);
}

}  // namespace mtg::engine
