#include "net/remote_backend.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/framing.hpp"
#include "net/wire.hpp"
#include "net/worker.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mtg::engine {

namespace {

using net::FrameChannel;
using net::Message;
using net::MessageType;
using net::UniverseTag;
using net::WantTag;
using net::WireQuery;
using net::WireResult;
using steady = std::chrono::steady_clock;

/// How often the dispatcher re-checks straggler ages / peer deaths while
/// waiting for replies, and the supervisor's scheduling granularity.
constexpr auto kDispatchTick = std::chrono::milliseconds(20);
constexpr auto kSupervisorTick = std::chrono::milliseconds(20);

/// The peer lifecycle (see remote_backend.hpp for the diagram). Suspect
/// peers get no new dispatches but their in-flight replies still count;
/// Reconnecting marks an attempt in progress on the supervisor thread.
enum class PeerPhase { Alive, Suspect, Dead, Reconnecting };

class RemoteBackend final : public Backend {
public:
    RemoteBackend(std::vector<PeerConfig> configs,
                  const RemoteOptions& options)
        : options_(options), backoff_rng_(options.backoff_seed) {
        MTG_EXPECTS(!configs.empty());
        MTG_EXPECTS(options.ranges_per_peer >= 1);
        MTG_EXPECTS(options.straggler_timeout_ms >= 1);
        MTG_EXPECTS(options.heartbeat_interval_ms >= 0);
        MTG_EXPECTS(options.suspect_after_ms >= 1);
        MTG_EXPECTS(options.dead_after_ms >= options.suspect_after_ms);
        MTG_EXPECTS(options.reconnect_backoff_ms >= 1);
        MTG_EXPECTS(options.reconnect_backoff_max_ms >=
                    options.reconnect_backoff_ms);
        MTG_EXPECTS(options.frame_version == 0 || options.frame_version == 1);
        const auto now = steady::now();
        peers_.reserve(configs.size());
        for (PeerConfig& config : configs) {
            auto peer = std::make_unique<PeerState>();
            peer->connect_fn = std::move(config.connect);
            peer->next_attempt = now;
            if (config.fd >= 0) {
                auto channel = std::make_shared<FrameChannel>(config.fd);
                channel->set_max_frame_bytes(options_.max_frame_bytes);
                channel->set_mid_frame_idle_ms(options_.mid_frame_idle_ms);
                if (hello_exchange(*channel)) {
                    peer->channel = std::move(channel);
                    peer->phase = PeerPhase::Alive;
                    peer->last_pong = now;
                    peer->last_ping = now;
                }
                // else: the channel closes here; the peer starts Dead and
                // the supervisor revives it if a connect factory exists.
            }
            peers_.push_back(std::move(peer));
        }
        for (std::size_t p = 0; p < peers_.size(); ++p) {
            PeerState& peer = *peers_[p];
            if (peer.channel != nullptr)
                peer.receiver = std::thread(
                    [this, p, channel = peer.channel] {
                        receiver_loop(p, /*generation=*/0, channel);
                    });
        }
        supervisor_ = std::thread([this] { supervisor_loop(); });
    }

    ~RemoteBackend() override {
        stop_.store(true, std::memory_order_relaxed);
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            for (const auto& peer : peers_)
                if (peer->channel) peer->channel->shutdown();
        }
        if (supervisor_.joinable()) supervisor_.join();
        // The supervisor is gone, so no new connections or receivers can
        // appear; shut down anything it created after the first pass.
        for (const auto& peer : peers_)
            if (peer->channel) peer->channel->shutdown();
        for (const auto& peer : peers_)
            if (peer->receiver.joinable()) peer->receiver.join();
    }

    [[nodiscard]] const char* name() const override { return "remote"; }

    // ------------------------------------------------------ bit universe --

    [[nodiscard]] std::vector<bool> detects(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Bit, WantTag::Detects, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.bit_opts = ctx.opts;
                query.bit_faults.assign(population.begin() + begin,
                                        population.begin() + end);
            });
        return merge_verdicts(results, population.size());
    }

    [[nodiscard]] bool detects_all(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Bit, WantTag::DetectsAll,
            ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.bit_opts = ctx.opts;
                query.bit_faults.assign(population.begin() + begin,
                                        population.begin() + end);
            });
        return merge_all(results);
    }

    [[nodiscard]] std::vector<sim::RunTrace> traces(
        const BitContext& ctx,
        std::span<const sim::InjectedFault> population) const override {
        auto results = execute(
            population.size(), UniverseTag::Bit, WantTag::Traces, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.bit_opts = ctx.opts;
                query.bit_faults.assign(population.begin() + begin,
                                        population.begin() + end);
            });
        std::vector<sim::RunTrace> merged;
        merged.reserve(population.size());
        for (WireResult& result : results)
            for (sim::RunTrace& trace : result.traces)
                merged.push_back(std::move(trace));
        return merged;
    }

    // ----------------------------------------------------- word universe --

    [[nodiscard]] std::vector<bool> detects(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Word, WantTag::Detects, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.word_opts = ctx.opts;
                query.backgrounds = ctx.backgrounds;
                query.word_faults.assign(population.begin() + begin,
                                         population.begin() + end);
            });
        return merge_verdicts(results, population.size());
    }

    [[nodiscard]] bool detects_all(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        const auto results = execute(
            population.size(), UniverseTag::Word, WantTag::DetectsAll,
            ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.word_opts = ctx.opts;
                query.backgrounds = ctx.backgrounds;
                query.word_faults.assign(population.begin() + begin,
                                         population.begin() + end);
            });
        return merge_all(results);
    }

    [[nodiscard]] std::vector<word::WordRunTrace> traces(
        const WordContext& ctx,
        std::span<const word::InjectedBitFault> population) const override {
        auto results = execute(
            population.size(), UniverseTag::Word, WantTag::Traces, ctx.test,
            [&](std::size_t begin, std::size_t end, WireQuery& query) {
                query.word_opts = ctx.opts;
                query.backgrounds = ctx.backgrounds;
                query.word_faults.assign(population.begin() + begin,
                                         population.begin() + end);
            });
        std::vector<word::WordRunTrace> merged;
        merged.reserve(population.size());
        for (WireResult& result : results)
            for (word::WordRunTrace& trace : result.word_traces)
                merged.push_back(std::move(trace));
        return merged;
    }

private:
    struct PeerState {
        std::function<int()> connect_fn;  ///< empty = dead is final
        /// Shared so senders can hold the connection across a concurrent
        /// replacement; replaced only under mutex_.
        std::shared_ptr<FrameChannel> channel;
        std::thread receiver;  ///< touched only by ctor/supervisor/dtor
        /// Serializes frame *writes* (dispatcher queries vs supervisor
        /// pings) on one connection; never held together with mutex_.
        std::mutex send_mutex;
        PeerPhase phase{PeerPhase::Dead};
        /// Bumped per connection; stale receivers and send failures from
        /// an earlier connection must not touch the current one.
        std::uint64_t generation{0};
        int outstanding{0};  ///< queries sent, replies not yet routed
        steady::time_point last_pong{};
        steady::time_point last_ping{};
        int backoff_attempt{0};
        steady::time_point next_attempt{};
    };

    /// One range's lifecycle within an execute() call.
    struct Task {
        std::uint64_t id{0};
        std::size_t begin{0};
        std::size_t end{0};
        WantTag want{WantTag::Detects};
        UniverseTag universe{UniverseTag::Bit};
        std::vector<std::uint8_t> payload;  ///< encoded query, re-sendable
        bool done{false};
        std::vector<std::size_t> owing;  ///< peers owing a reply
        steady::time_point last_dispatch{};
        WireResult result;
    };

    RemoteOptions options_;
    mutable std::vector<std::unique_ptr<PeerState>> peers_;
    std::thread supervisor_;
    std::atomic<bool> stop_{false};

    mutable std::mutex exec_mutex_;  ///< one execute() at a time
    mutable std::mutex mutex_;       ///< peers / tasks / ids
    mutable std::condition_variable cv_;
    mutable std::uint64_t next_id_{1};
    mutable std::uint64_t ping_nonce_{0};
    mutable std::unordered_map<std::uint64_t, Task*> task_index_;
    mutable SplitMix64 backoff_rng_;  ///< supervisor only, under mutex_
    /// The DegradeLocal peer of last resort, built on first use. Guarded
    /// by exec_mutex_ (only the dispatcher touches it).
    mutable std::unique_ptr<Backend> local_;

    // -------------------------------------------------------- handshake --

    /// Runs the coordinator side of the Hello exchange on a fresh
    /// connection (before its receiver exists — recv here is safe).
    /// frame_version 1 pins bare v1 frames and skips the exchange
    /// entirely for pre-negotiation peers.
    [[nodiscard]] bool hello_exchange(FrameChannel& channel) const {
        if (options_.frame_version == 1) return true;
        if (!channel.send(net::encode_hello({net::kMaxFrameVersion})))
            return false;
        std::vector<std::uint8_t> payload;
        if (channel.recv(payload, options_.connect_timeout_ms) !=
            FrameChannel::RecvStatus::Ok)
            return false;
        Message reply;
        try {
            reply = net::decode_message(payload);
        } catch (const net::WireFormatError&) {
            return false;
        }
        if (reply.type != MessageType::Hello) return false;
        const int agreed = reply.hello.max_frame_version;
        if (agreed < 1 || agreed > net::kMaxFrameVersion) return false;
        channel.set_frame_version(agreed);
        return true;
    }

    // ----------------------------------------------------- receiver side --

    void receiver_loop(std::size_t peer_index, std::uint64_t generation,
                       std::shared_ptr<FrameChannel> channel) const {
        std::vector<std::uint8_t> payload;
        for (;;) {
            const FrameChannel::RecvStatus status =
                channel->recv(payload, /*timeout_ms=*/100);
            if (stop_.load(std::memory_order_relaxed)) return;
            switch (status) {
                case FrameChannel::RecvStatus::Timeout: continue;
                case FrameChannel::RecvStatus::Ok:
                    if (!handle_frame(peer_index, generation, payload)) {
                        mark_dead(peer_index, generation);
                        return;
                    }
                    continue;
                case FrameChannel::RecvStatus::Closed:
                case FrameChannel::RecvStatus::Corrupt:
                    mark_dead(peer_index, generation);
                    return;
            }
        }
    }

    /// Routes one frame from a peer. False = the connection is unusable
    /// (undecodable frame, protocol violation, worker-side error).
    [[nodiscard]] bool handle_frame(
        std::size_t peer_index, std::uint64_t generation,
        const std::vector<std::uint8_t>& payload) const {
        Message message;
        try {
            message = net::decode_message(payload);
        } catch (const net::WireFormatError&) {
            return false;
        }
        if (message.type != MessageType::Result &&
            message.type != MessageType::Pong)
            return false;  // worker Error reply == dead peer: re-dispatch

        const std::lock_guard<std::mutex> lock(mutex_);
        PeerState& peer = *peers_[peer_index];
        const bool current = peer.generation == generation;
        if (current) {
            // Any valid frame is liveness evidence — a peer grinding
            // through a big range answers its queued pings late, and its
            // results count just as well.
            peer.last_pong = steady::now();
            if (peer.phase == PeerPhase::Suspect) {
                peer.phase = PeerPhase::Alive;
                cv_.notify_all();
            }
        }
        if (message.type == MessageType::Pong) return true;

        if (current && peer.outstanding > 0) --peer.outstanding;
        const auto it = task_index_.find(message.result.id);
        if (it != task_index_.end()) {
            Task& task = *it->second;
            std::erase(task.owing, peer_index);
            if (!task.done) {
                if (!result_matches(task, message.result)) return false;
                task.result = std::move(message.result);
                task.done = true;
            }
            // A duplicate reply for a done task is simply dropped:
            // results are deterministic, first-wins.
        }
        // Unknown id: a stale reply from an abandoned or earlier query —
        // the outstanding decrement above is all it was still good for.
        cv_.notify_all();
        return true;
    }

    /// Shape check: a reply that does not answer the question asked is a
    /// protocol violation, not a mergeable result.
    [[nodiscard]] static bool result_matches(const Task& task,
                                             const WireResult& result) {
        if (result.want != task.want || result.universe != task.universe ||
            result.range_begin != task.begin || result.range_end != task.end)
            return false;
        const std::size_t count = task.end - task.begin;
        switch (task.want) {
            case WantTag::Detects: return result.verdicts.size() == count;
            case WantTag::DetectsAll: return true;
            case WantTag::Traces:
                return (task.universe == UniverseTag::Bit
                            ? result.traces.size()
                            : result.word_traces.size()) == count;
        }
        return false;
    }

    void mark_dead(std::size_t peer_index, std::uint64_t generation) const {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (peers_[peer_index]->generation != generation)
            return;  // a stale verdict about an already-replaced connection
        mark_dead_locked(peer_index);
    }

    void mark_dead_locked(std::size_t peer_index) const {
        PeerState& peer = *peers_[peer_index];
        if (peer.phase == PeerPhase::Dead ||
            peer.phase == PeerPhase::Reconnecting)
            return;
        peer.phase = PeerPhase::Dead;
        peer.outstanding = 0;
        if (peer.channel) peer.channel->shutdown();
        // Ranges this peer still owed fall back to pending (owing empty):
        // the dispatcher re-dispatches them to surviving peers.
        for (auto& [id, task] : task_index_)
            std::erase(task->owing, peer_index);
        // First reconnect attempt is immediate; backoff grows on failure.
        peer.backoff_attempt = 0;
        peer.next_attempt = steady::now();
        cv_.notify_all();
    }

    // ---------------------------------------------------- supervisor side --

    void supervisor_loop() const {
        struct PingJob {
            std::size_t peer;
            std::uint64_t generation;
            std::shared_ptr<FrameChannel> channel;
            std::uint64_t nonce;
        };
        while (!stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(kSupervisorTick);
            if (stop_.load(std::memory_order_relaxed)) return;
            const auto now = steady::now();
            std::vector<PingJob> pings;
            std::vector<std::size_t> reconnects;
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                for (std::size_t p = 0; p < peers_.size(); ++p) {
                    PeerState& peer = *peers_[p];
                    if (peer.phase == PeerPhase::Alive ||
                        peer.phase == PeerPhase::Suspect) {
                        if (options_.heartbeat_interval_ms <= 0) continue;
                        const auto pong_age = now - peer.last_pong;
                        if (pong_age >= std::chrono::milliseconds(
                                            options_.dead_after_ms)) {
                            mark_dead_locked(p);
                            continue;
                        }
                        if (peer.phase == PeerPhase::Alive &&
                            pong_age >= std::chrono::milliseconds(
                                            options_.suspect_after_ms))
                            peer.phase = PeerPhase::Suspect;
                        if (now - peer.last_ping >=
                            std::chrono::milliseconds(
                                options_.heartbeat_interval_ms)) {
                            peer.last_ping = now;
                            pings.push_back({p, peer.generation,
                                             peer.channel, ++ping_nonce_});
                        }
                    } else if (peer.phase == PeerPhase::Dead &&
                               peer.connect_fn && now >= peer.next_attempt) {
                        peer.phase = PeerPhase::Reconnecting;
                        reconnects.push_back(p);
                    }
                }
            }
            for (PingJob& ping : pings) {
                bool sent;
                {
                    const std::lock_guard<std::mutex> send_lock(
                        peers_[ping.peer]->send_mutex);
                    sent = ping.channel->send(
                        net::encode_ping({ping.nonce}));
                }
                if (!sent) mark_dead(ping.peer, ping.generation);
            }
            for (const std::size_t p : reconnects) attempt_reconnect(p);
        }
    }

    /// One reconnect attempt for a peer the supervisor just moved to
    /// Reconnecting. Runs on the supervisor thread, blocking ops outside
    /// mutex_. Success rejoins the peer to range scheduling (Alive, fresh
    /// generation, new receiver); failure schedules the next attempt on
    /// the jittered exponential backoff.
    void attempt_reconnect(std::size_t peer_index) const {
        PeerState& peer = *peers_[peer_index];
        // The previous connection's receiver exits promptly: its channel
        // was shut down when the peer died.
        if (peer.receiver.joinable()) peer.receiver.join();
        int fd = -1;
        try {
            fd = peer.connect_fn();
        } catch (...) {
            fd = -1;
        }
        std::shared_ptr<FrameChannel> channel;
        if (fd >= 0) {
            channel = std::make_shared<FrameChannel>(fd);
            channel->set_max_frame_bytes(options_.max_frame_bytes);
            channel->set_mid_frame_idle_ms(options_.mid_frame_idle_ms);
            if (!hello_exchange(*channel)) channel.reset();
        }
        const auto now = steady::now();
        const std::lock_guard<std::mutex> lock(mutex_);
        if (channel != nullptr && !stop_.load(std::memory_order_relaxed)) {
            peer.channel = std::move(channel);
            peer.phase = PeerPhase::Alive;
            peer.outstanding = 0;
            peer.last_pong = now;
            peer.last_ping = now;
            peer.backoff_attempt = 0;
            const std::uint64_t generation = ++peer.generation;
            peer.receiver = std::thread(
                [this, peer_index, generation, ch = peer.channel] {
                    receiver_loop(peer_index, generation, ch);
                });
            cv_.notify_all();
        } else {
            if (channel) channel->shutdown();
            peer.phase = PeerPhase::Dead;
            peer.next_attempt = now + backoff_delay(peer.backoff_attempt++);
        }
    }

    /// min(backoff << attempt, backoff_max), jittered into [base/2, base]
    /// by the seeded generator — deterministic, so chaos runs replay.
    [[nodiscard]] std::chrono::milliseconds backoff_delay(int attempt) const {
        const auto shifted =
            static_cast<std::uint64_t>(options_.reconnect_backoff_ms)
            << std::min(attempt, 20);
        const std::uint64_t base = std::min(
            shifted,
            static_cast<std::uint64_t>(options_.reconnect_backoff_max_ms));
        const std::uint64_t jitter = backoff_rng_.below(base / 2 + 1);
        return std::chrono::milliseconds(base - base / 2 + jitter);
    }

    // --------------------------------------------------- dispatcher side --

    /// Splits [0, total) into 504-lane-aligned ranges, ships each as a
    /// Query, and gathers results with straggler re-dispatch, deadline
    /// budgeting and (policy permitting) local degradation. Returns the
    /// completed tasks' results in range order; with want == DetectsAll an
    /// escaping range short-circuits and the abandoned tasks are omitted.
    template <typename FillQuery>
    [[nodiscard]] std::vector<WireResult> execute(
        std::size_t total, UniverseTag universe, WantTag want,
        const march::MarchTest& test, FillQuery&& fill) const {
        if (total == 0) return {};
        const std::lock_guard<std::mutex> exec_lock(exec_mutex_);

        // Build and register the tasks.
        std::vector<Task> tasks;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            int alive = 0;
            bool revivable = false;
            for (const auto& peer : peers_) {
                if (peer->phase == PeerPhase::Alive ||
                    peer->phase == PeerPhase::Suspect)
                    ++alive;
                else if (peer->connect_fn)
                    revivable = true;
            }
            if (alive == 0 && !revivable &&
                options_.degrade == DegradePolicy::FailFast)
                throw std::runtime_error(
                    "RemoteBackend: no live peers to dispatch to");
            const auto ranges = shard_ranges(
                total,
                std::max(1, std::max(alive, 1) * options_.ranges_per_peer));
            tasks.reserve(ranges.size());
            for (const auto& [begin, end] : ranges) {
                Task task;
                task.id = next_id_++;
                task.begin = begin;
                task.end = end;
                task.want = want;
                task.universe = universe;
                WireQuery query;
                query.id = task.id;
                query.universe = universe;
                query.want = want;
                query.range_begin = begin;
                query.range_end = end;
                query.test = test;
                fill(begin, end, query);
                task.payload = net::encode_query(query);
                tasks.push_back(std::move(task));
            }
            for (Task& task : tasks) task_index_.emplace(task.id, &task);
        }
        // Always unregister, even when throwing: task_index_ must never
        // outlive the tasks vector it points into.
        struct Deregister {
            const RemoteBackend* backend;
            std::vector<Task>* tasks;
            ~Deregister() {
                const std::lock_guard<std::mutex> lock(backend->mutex_);
                for (const Task& task : *tasks)
                    backend->task_index_.erase(task.id);
            }
        } deregister{this, &tasks};

        run_dispatch_loop(tasks, want);

        std::vector<WireResult> results;
        results.reserve(tasks.size());
        for (Task& task : tasks)
            if (task.done) results.push_back(std::move(task.result));
        return results;
    }

    void run_dispatch_loop(std::vector<Task>& tasks, WantTag want) const {
        const auto start = steady::now();
        const auto straggler_age =
            std::chrono::milliseconds(options_.straggler_timeout_ms);
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            bool all_done = true;
            for (const Task& task : tasks) {
                if (want == WantTag::DetectsAll && task.done &&
                    !task.result.all)
                    return;  // AND short-circuit: verdict is already false
                all_done = all_done && task.done;
            }
            if (all_done) return;

            if (options_.query_deadline_ms > 0 &&
                steady::now() - start >= std::chrono::milliseconds(
                                             options_.query_deadline_ms)) {
                degrade_or_throw(tasks, want, lock,
                                 "query deadline exceeded");
                return;
            }

            // Hand pending and straggler-aged ranges to idle Alive peers.
            struct Send {
                std::size_t peer;
                std::uint64_t generation;
                std::shared_ptr<FrameChannel> channel;
                Task* task;
            };
            std::vector<Send> sends;
            const auto now = steady::now();
            for (std::size_t p = 0; p < peers_.size(); ++p) {
                PeerState& peer = *peers_[p];
                if (peer.phase != PeerPhase::Alive || peer.outstanding > 0)
                    continue;
                Task* chosen = nullptr;
                for (Task& task : tasks) {  // pending ranges first
                    if (!task.done && task.owing.empty()) {
                        chosen = &task;
                        break;
                    }
                }
                if (chosen == nullptr) {
                    // Straggler re-dispatch: duplicate the oldest range
                    // that has been in flight beyond the timeout. Either
                    // copy of the (deterministic) result will do.
                    for (Task& task : tasks) {
                        if (task.done || task.owing.empty()) continue;
                        if (now - task.last_dispatch < straggler_age)
                            continue;
                        if (chosen == nullptr ||
                            task.last_dispatch < chosen->last_dispatch)
                            chosen = &task;
                    }
                }
                if (chosen == nullptr) continue;
                // Commit before sending so the next idle peer in this
                // round sees the range as in flight.
                chosen->owing.push_back(p);
                chosen->last_dispatch = now;
                ++peer.outstanding;
                sends.push_back({p, peer.generation, peer.channel, chosen});
            }

            if (sends.empty()) {
                bool any_usable = false;    // could still answer
                bool any_revivable = false;  // could come back
                for (const auto& peer : peers_) {
                    if (peer->phase == PeerPhase::Alive ||
                        peer->phase == PeerPhase::Suspect)
                        any_usable = true;
                    else if (peer->phase == PeerPhase::Reconnecting ||
                             peer->connect_fn)
                        any_revivable = true;
                }
                if (!any_usable && !any_revivable) {
                    degrade_or_throw(tasks, want, lock,
                                     "all peers dead with ranges "
                                     "unanswered");
                    return;
                }
                cv_.wait_for(lock, kDispatchTick);
                continue;
            }

            lock.unlock();
            for (const Send& send : sends) {
                bool sent;
                {
                    const std::lock_guard<std::mutex> send_lock(
                        peers_[send.peer]->send_mutex);
                    sent = send.channel->send(send.task->payload);
                }
                if (!sent) mark_dead(send.peer, send.generation);
            }
            lock.lock();
        }
    }

    /// The fleet cannot (or may not, deadline-wise) finish this query.
    /// FailFast throws; DegradeLocal answers every unfinished range on a
    /// coordinator-local PackedBackend via the exact evaluation a worker
    /// runs, so the merged result is bit-identical to an all-remote run.
    /// Entered and left holding `lock`.
    void degrade_or_throw(std::vector<Task>& tasks, WantTag want,
                          std::unique_lock<std::mutex>& lock,
                          const char* why) const {
        bool any_pending = false;
        for (const Task& task : tasks) any_pending |= !task.done;
        if (!any_pending) return;
        if (options_.degrade == DegradePolicy::FailFast)
            throw std::runtime_error(std::string("RemoteBackend: ") + why);

        lock.unlock();
        if (local_ == nullptr) local_ = make_packed_backend();
        for (Task& task : tasks) {
            {
                const std::lock_guard<std::mutex> peek(mutex_);
                if (task.done) continue;  // a late remote reply won
            }
            const WireQuery query =
                net::decode_message(task.payload).query;
            WireResult result = net::evaluate_query(*local_, query);
            const std::lock_guard<std::mutex> commit(mutex_);
            if (!task.done) {
                task.result = std::move(result);
                task.done = true;
            }
            if (want == WantTag::DetectsAll && !task.result.all)
                break;  // AND short-circuit, exactly like the remote path
        }
        lock.lock();
    }

    // --------------------------------------------------------- merging ---

    [[nodiscard]] static std::vector<bool> merge_verdicts(
        const std::vector<WireResult>& results, std::size_t total) {
        std::vector<bool> merged;
        merged.reserve(total);
        for (const WireResult& result : results)
            merged.insert(merged.end(), result.verdicts.begin(),
                          result.verdicts.end());
        MTG_ENSURES(merged.size() == total);
        return merged;
    }

    [[nodiscard]] static bool merge_all(
        const std::vector<WireResult>& results) {
        for (const WireResult& result : results)
            if (!result.all) return false;
        return true;
    }
};

}  // namespace

std::unique_ptr<Backend> make_remote_backend(std::vector<int> peer_fds,
                                             const RemoteOptions& options) {
    std::vector<PeerConfig> configs;
    configs.reserve(peer_fds.size());
    for (const int fd : peer_fds) configs.push_back({fd, {}});
    return std::make_unique<RemoteBackend>(std::move(configs), options);
}

std::unique_ptr<Backend> make_remote_backend(std::vector<PeerConfig> peers,
                                             const RemoteOptions& options) {
    return std::make_unique<RemoteBackend>(std::move(peers), options);
}

}  // namespace mtg::engine
