#pragma once

/// \file worker.hpp
/// The fleet worker: answers wire.hpp shard queries over one connection.
///
/// A worker is completely stateless — every query carries the March test,
/// the universe options and the concrete population slice, so the worker
/// just evaluates it through a local PackedBackend (global thread pool,
/// CPUID lane width) and replies. Connections are served sequentially:
/// queries on one connection are answered in arrival order (the
/// coordinator matches replies by id, not by order, so pipelining is
/// legal).
///
/// Frame-version negotiation: when the first message on a connection is
/// a Hello, the worker replies Hello{min(offered, own max)} and switches
/// the channel to the agreed frame version (v2 = CRC32C trailer). When
/// the first message is a Query, the peer is a v1 coordinator and the
/// connection stays v1 — old coordinators are served unchanged. Ping
/// messages are answered with a Pong echoing the nonce at any point;
/// they are not queries (hooks and counters ignore them).
///
/// WorkerHooks exist for the transport's fault-injection tests (and for
/// nothing else): a per-query artificial delay models a straggler, dying
/// after the k-th query models a peer killed mid-query (flap is the same
/// death but the fleet accepts a reconnect afterwards), and replying
/// with garbage / a truncated frame models a corrupted stream. All
/// default off.
///
/// serve_connection() is the single implementation behind both the
/// same-process loopback peers (LoopbackFleet, used by CI) and the
/// march_tool `serve` daemon (one thread per accepted TCP connection).

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mtg::engine {
class Backend;
}  // namespace mtg::engine

namespace mtg::net {

struct WireQuery;
struct WireResult;

/// Test-only failure injection for a worker connection.
struct WorkerHooks {
    int delay_ms{0};  ///< sleep this long before answering each query
    /// Close the connection upon receiving the k-th query (1-based)
    /// WITHOUT replying — a peer killed mid-query. -1 = never.
    int die_after_queries{-1};
    /// Like die_after_queries, but the peer *flaps*: LoopbackFleet keeps
    /// accepting reconnects for it (a revived worker with clean hooks),
    /// so a supervised coordinator can bring it back mid-query. -1 =
    /// never.
    int flap_after_queries{-1};
    /// Reply to the k-th query (1-based) with an undecodable frame, then
    /// close. -1 = never.
    int garbage_after_queries{-1};
    /// Reply to the k-th query (1-based) with a frame whose length prefix
    /// promises more bytes than are sent, then close. -1 = never.
    int truncate_after_queries{-1};
    /// Reply to the k-th query (1-based) with the first bytes of a frame,
    /// then stall for `dribble_stall_ms` before closing — the mid-frame
    /// byte-dribbler the idle-progress bound (FrameChannel::
    /// set_mid_frame_idle_ms) exists for. A receiver with the bound
    /// declares the stream Corrupt as soon as the stall exceeds it; the
    /// pre-PR 9 receiver hung here for the whole stall. -1 = never.
    int dribble_after_queries{-1};
    int dribble_stall_ms{1000};
    /// Highest frame version this worker admits in the Hello exchange
    /// (0 = the build's kMaxFrameVersion). Pinning 1 models a v1-only
    /// peer for the negotiation tests.
    int max_frame_version{0};
    /// Frame payload cap for this connection (0 = net::kMaxFrameBytes).
    /// Must match the coordinator's RemoteOptions::max_frame_bytes when
    /// raised — large-word-memory Traces replies exceed the 64 MiB
    /// default. Not test-only, despite the struct's name.
    std::uint32_t max_frame_bytes{0};
    /// When set, incremented for every query this worker *answers* —
    /// lets tests assert a revived peer demonstrably served ranges.
    std::atomic<int>* answered_queries{nullptr};
};

/// Serves one connection until it closes (or a hook fires). Takes
/// ownership of `fd`. Malformed queries get an Error reply and close the
/// connection; evaluation failures get an Error reply and keep serving.
void serve_connection(int fd, const WorkerHooks& hooks = {});

/// Evaluates one decoded shard query on `backend` — the exact evaluation
/// a remote worker performs, exposed so the coordinator's DegradeLocal
/// "peer of last resort" produces bit-identical results by construction.
[[nodiscard]] WireResult evaluate_query(const engine::Backend& backend,
                                        const WireQuery& query);

/// N same-process worker peers, each a thread serving one end of an
/// AF_UNIX socketpair — the loopback transport CI runs the full
/// differential harness over, no real networking involved. The
/// coordinator-side fds are handed out once via take_fds() (the caller —
/// normally make_remote_backend — owns and closes them); worker threads
/// exit when their connection closes and are joined by the destructor.
/// Declare the fleet BEFORE the backend that takes its fds: the backend's
/// destructor closes the connections, which is what lets the join finish.
///
/// reconnector(i) supports the supervised peer lifecycle: it returns a
/// callback (suitable as PeerConfig::connect) that spawns a fresh worker
/// thread for peer i — with `reconnect_hooks` if set, clean hooks
/// otherwise — and hands back the new coordinator-side fd. Each call
/// serves one reconnect; connection_count(i) says how many connections
/// peer i has accepted in total (initial + reconnects).
class LoopbackFleet {
public:
    /// `peer_hooks[i]` configures peer i; peers beyond the vector get
    /// default hooks.
    explicit LoopbackFleet(int peers,
                           std::vector<WorkerHooks> peer_hooks = {});
    ~LoopbackFleet();

    LoopbackFleet(const LoopbackFleet&) = delete;
    LoopbackFleet& operator=(const LoopbackFleet&) = delete;

    /// The coordinator-side fds, one per peer. Callable once; ownership
    /// transfers to the caller.
    [[nodiscard]] std::vector<int> take_fds();

    /// Hooks applied to peer `peer`'s future reconnects (default: clean).
    void set_reconnect_hooks(int peer, WorkerHooks hooks);

    /// A thread-safe reconnect factory for peer `peer`. The returned
    /// callback may outlive intermediate connections but NOT the fleet.
    [[nodiscard]] std::function<int()> reconnector(int peer);

    /// Connections peer `peer` has accepted so far (1 after construction).
    [[nodiscard]] int connection_count(int peer) const;

    /// Queries peer `peer` has answered across all its connections.
    /// (Counted through an injected WorkerHooks::answered_queries unless
    /// the caller supplied their own counter, which takes precedence.)
    [[nodiscard]] int queries_answered(int peer) const;

private:
    mutable std::mutex mutex_;
    std::vector<int> coordinator_fds_;
    std::vector<std::thread> workers_;
    std::vector<WorkerHooks> reconnect_hooks_;
    std::vector<int> connection_counts_;
    std::vector<std::unique_ptr<std::atomic<int>>> answered_;
};

}  // namespace mtg::net
