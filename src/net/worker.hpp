#pragma once

/// \file worker.hpp
/// The fleet worker: answers wire.hpp shard queries over one connection.
///
/// A worker is completely stateless — every query carries the March test,
/// the universe options and the concrete population slice, so the worker
/// just evaluates it through a local PackedBackend (global thread pool,
/// CPUID lane width) and replies. Connections are served sequentially:
/// queries on one connection are answered in arrival order (the
/// coordinator matches replies by id, not by order, so pipelining is
/// legal).
///
/// WorkerHooks exist for the transport's fault-injection tests (and for
/// nothing else): a per-query artificial delay models a straggler, dying
/// after the k-th query models a peer killed mid-query, and replying with
/// garbage / a truncated frame models a corrupted stream. All default
/// off.
///
/// serve_connection() is the single implementation behind both the
/// same-process loopback peers (LoopbackFleet, used by CI) and the
/// march_tool `serve` daemon (one thread per accepted TCP connection).

#include <thread>
#include <vector>

namespace mtg::net {

/// Test-only failure injection for a worker connection.
struct WorkerHooks {
    int delay_ms{0};  ///< sleep this long before answering each query
    /// Close the connection upon receiving the k-th query (1-based)
    /// WITHOUT replying — a peer killed mid-query. -1 = never.
    int die_after_queries{-1};
    /// Reply to the k-th query (1-based) with an undecodable frame, then
    /// close. -1 = never.
    int garbage_after_queries{-1};
    /// Reply to the k-th query (1-based) with a frame whose length prefix
    /// promises more bytes than are sent, then close. -1 = never.
    int truncate_after_queries{-1};
};

/// Serves one connection until it closes (or a hook fires). Takes
/// ownership of `fd`. Malformed queries get an Error reply and close the
/// connection; evaluation failures get an Error reply and keep serving.
void serve_connection(int fd, const WorkerHooks& hooks = {});

/// N same-process worker peers, each a thread serving one end of an
/// AF_UNIX socketpair — the loopback transport CI runs the full
/// differential harness over, no real networking involved. The
/// coordinator-side fds are handed out once via take_fds() (the caller —
/// normally make_remote_backend — owns and closes them); worker threads
/// exit when their connection closes and are joined by the destructor.
/// Declare the fleet BEFORE the backend that takes its fds: the backend's
/// destructor closes the connections, which is what lets the join finish.
class LoopbackFleet {
public:
    /// `peer_hooks[i]` configures peer i; peers beyond the vector get
    /// default hooks.
    explicit LoopbackFleet(int peers,
                           std::vector<WorkerHooks> peer_hooks = {});
    ~LoopbackFleet();

    LoopbackFleet(const LoopbackFleet&) = delete;
    LoopbackFleet& operator=(const LoopbackFleet&) = delete;

    /// The coordinator-side fds, one per peer. Callable once; ownership
    /// transfers to the caller.
    [[nodiscard]] std::vector<int> take_fds();

private:
    std::vector<int> coordinator_fds_;
    std::vector<std::thread> workers_;
};

}  // namespace mtg::net
