#include "net/framing.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace mtg::net {

namespace {

using clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`; -1 for the no-deadline sentinel.
int remaining_ms(bool has_deadline, clock::time_point deadline) {
    if (!has_deadline) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - clock::now())
                          .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

FrameChannel::FrameChannel(int fd) : fd_(fd) {}

FrameChannel::~FrameChannel() {
    if (fd_ >= 0) ::close(fd_);
}

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

bool FrameChannel::send(std::span<const std::uint8_t> payload) {
    if (fd_ < 0 || payload.size() > kMaxFrameBytes) return false;
    std::uint8_t header[4];
    const auto length = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<std::uint8_t>(length >> (8 * i));

    const std::uint8_t* chunks[2] = {header, payload.data()};
    const std::size_t sizes[2] = {sizeof(header), payload.size()};
    for (int part = 0; part < 2; ++part) {
        const std::uint8_t* data = chunks[part];
        std::size_t left = sizes[part];
        while (left > 0) {
            const ssize_t wrote =
                ::send(fd_, data, left, MSG_NOSIGNAL);
            if (wrote < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            data += wrote;
            left -= static_cast<std::size_t>(wrote);
        }
    }
    return true;
}

FrameChannel::IoStatus FrameChannel::read_exact(std::uint8_t* out,
                                                std::size_t n,
                                                int timeout_ms,
                                                bool started) {
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
    std::size_t got = 0;
    while (got < n) {
        // Once the frame has started, keep reading to completion: a
        // deadline mid-frame would leave the stream unsynchronizable.
        const int wait = started ? -1 : remaining_ms(has_deadline, deadline);
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return IoStatus::Closed;
        }
        if (ready == 0) return IoStatus::Timeout;
        const ssize_t read = ::recv(fd_, out + got, n - got, 0);
        if (read < 0) {
            if (errno == EINTR) continue;
            return IoStatus::Closed;
        }
        if (read == 0) return IoStatus::Closed;  // EOF
        got += static_cast<std::size_t>(read);
        started = true;
    }
    return IoStatus::Ok;
}

FrameChannel::RecvStatus FrameChannel::recv(std::vector<std::uint8_t>& payload,
                                            int timeout_ms) {
    if (fd_ < 0) return RecvStatus::Closed;
    std::uint8_t header[4];
    // The length prefix itself may stall mid-way only if the peer died or
    // is byte-dribbling; either way the stream cannot resync -> Corrupt is
    // handled below by the started flag logic: a partial header followed
    // by EOF is a truncated frame.
    std::size_t got = 0;
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
    while (got < sizeof(header)) {
        pollfd pfd{fd_, POLLIN, 0};
        const int wait =
            got > 0 ? -1 : remaining_ms(has_deadline, deadline);
        const int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return got > 0 ? RecvStatus::Corrupt : RecvStatus::Closed;
        }
        if (ready == 0) return RecvStatus::Timeout;
        const ssize_t read = ::recv(fd_, header + got, sizeof(header) - got, 0);
        if (read < 0 && errno == EINTR) continue;
        if (read <= 0)
            return got > 0 ? RecvStatus::Corrupt : RecvStatus::Closed;
        got += static_cast<std::size_t>(read);
    }
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    if (length > kMaxFrameBytes) return RecvStatus::Corrupt;
    payload.resize(length);
    if (length == 0) return RecvStatus::Ok;
    switch (read_exact(payload.data(), length, /*timeout_ms=*/-1,
                       /*started=*/true)) {
        case IoStatus::Ok: return RecvStatus::Ok;
        case IoStatus::Timeout:  // unreachable: started frames never time out
        case IoStatus::Closed: return RecvStatus::Corrupt;
    }
    return RecvStatus::Corrupt;
}

void FrameChannel::shutdown() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::pair<int, int> socket_pair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw_errno("socketpair");
    return {fds[0], fds[1]};
}

int tcp_listen(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("bind");
    }
    if (::listen(fd, 16) != 0) {
        ::close(fd);
        throw_errno("listen");
    }
    return fd;
}

int tcp_accept(int listen_fd) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return fd;
        }
        if (errno != EINTR) throw_errno("accept");
    }
}

int tcp_connect(const std::string& host, std::uint16_t port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                 &result);
    if (rc != 0)
        throw std::runtime_error("getaddrinfo " + host + ": " +
                                 gai_strerror(rc));
    int fd = -1;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(result);
    if (fd < 0)
        throw std::runtime_error("connect " + host + ":" + service +
                                 " failed");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

}  // namespace mtg::net
