#include "net/framing.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "net/crc32c.hpp"
#include "util/contracts.hpp"

namespace mtg::net {

namespace {

using clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`; -1 for the no-deadline sentinel.
int remaining_ms(bool has_deadline, clock::time_point deadline) {
    if (!has_deadline) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - clock::now())
                          .count();
    return left < 0 ? 0 : static_cast<int>(left);
}

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

FrameChannel::FrameChannel(int fd) : fd_(fd) {}

FrameChannel::~FrameChannel() {
    if (fd_ >= 0) ::close(fd_);
}

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      frame_version_(other.frame_version_),
      max_frame_bytes_(other.max_frame_bytes_),
      mid_frame_idle_ms_(other.mid_frame_idle_ms_) {}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        frame_version_ = other.frame_version_;
        max_frame_bytes_ = other.max_frame_bytes_;
        mid_frame_idle_ms_ = other.mid_frame_idle_ms_;
    }
    return *this;
}

void FrameChannel::set_frame_version(int version) {
    MTG_EXPECTS(version == 1 || version == 2);
    frame_version_ = version;
}

void FrameChannel::set_max_frame_bytes(std::uint32_t max_bytes) {
    max_frame_bytes_ = max_bytes == 0 ? kMaxFrameBytes : max_bytes;
}

void FrameChannel::set_mid_frame_idle_ms(int idle_ms) {
    mid_frame_idle_ms_ = idle_ms == 0 ? kDefaultMidFrameIdleMs : idle_ms;
}

bool FrameChannel::send(std::span<const std::uint8_t> payload) {
    if (fd_ < 0 || payload.size() > max_frame_bytes_) return false;
    std::uint8_t header[4];
    const auto length = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        header[i] = static_cast<std::uint8_t>(length >> (8 * i));
    std::uint8_t trailer[4];
    if (frame_version_ >= 2) {
        const std::uint32_t crc = crc32c(payload);
        for (int i = 0; i < 4; ++i)
            trailer[i] = static_cast<std::uint8_t>(crc >> (8 * i));
    }

    const std::uint8_t* chunks[3] = {header, payload.data(), trailer};
    const std::size_t sizes[3] = {sizeof(header), payload.size(),
                                  frame_version_ >= 2 ? sizeof(trailer) : 0};
    for (int part = 0; part < 3; ++part) {
        const std::uint8_t* data = chunks[part];
        std::size_t left = sizes[part];
        while (left > 0) {
            const ssize_t wrote =
                ::send(fd_, data, left, MSG_NOSIGNAL);
            if (wrote < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            data += wrote;
            left -= static_cast<std::size_t>(wrote);
        }
    }
    return true;
}

FrameChannel::IoStatus FrameChannel::read_exact(std::uint8_t* out,
                                                std::size_t n,
                                                int timeout_ms,
                                                bool started) {
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
    std::size_t got = 0;
    while (got < n) {
        // Once the frame has started, keep reading to completion — a
        // caller deadline mid-frame would leave the stream
        // unsynchronizable — but bound each wait by the idle-progress
        // window: a byte-dribbling peer that stops making progress wedges
        // the stream just as surely as a dead one, and used to hold the
        // receiver here forever, past any per-query deadline budget.
        // Every arriving byte restarts the window (poll waits per-byte),
        // so slow-but-advancing peers always finish.
        const int wait = started ? mid_frame_idle_ms_
                                 : remaining_ms(has_deadline, deadline);
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return IoStatus::Closed;
        }
        if (ready == 0)
            return started ? IoStatus::Stalled : IoStatus::Timeout;
        const ssize_t read = ::recv(fd_, out + got, n - got, 0);
        if (read < 0) {
            if (errno == EINTR) continue;
            return IoStatus::Closed;
        }
        if (read == 0) return IoStatus::Closed;  // EOF
        got += static_cast<std::size_t>(read);
        started = true;
    }
    return IoStatus::Ok;
}

FrameChannel::RecvStatus FrameChannel::recv(std::vector<std::uint8_t>& payload,
                                            int timeout_ms) {
    if (fd_ < 0) return RecvStatus::Closed;
    std::uint8_t header[4];
    // A partial length prefix means the frame has started: from that point
    // the caller deadline no longer applies (the stream cannot resync if
    // we abandon it), but the idle-progress bound does — a peer that
    // dribbles part of a header and stalls is Corrupt, not a hang.
    std::size_t got = 0;
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
    while (got < sizeof(header)) {
        pollfd pfd{fd_, POLLIN, 0};
        const int wait =
            got > 0 ? mid_frame_idle_ms_ : remaining_ms(has_deadline, deadline);
        const int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return got > 0 ? RecvStatus::Corrupt : RecvStatus::Closed;
        }
        if (ready == 0)
            return got > 0 ? RecvStatus::Corrupt : RecvStatus::Timeout;
        const ssize_t read = ::recv(fd_, header + got, sizeof(header) - got, 0);
        if (read < 0 && errno == EINTR) continue;
        if (read <= 0)
            return got > 0 ? RecvStatus::Corrupt : RecvStatus::Closed;
        got += static_cast<std::size_t>(read);
    }
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    if (length > max_frame_bytes_) return RecvStatus::Corrupt;
    payload.resize(length);
    if (length > 0) {
        switch (read_exact(payload.data(), length, /*timeout_ms=*/-1,
                           /*started=*/true)) {
            case IoStatus::Ok: break;
            case IoStatus::Timeout:  // unreachable: started reads stall,
                                     // never time out
            case IoStatus::Stalled:
            case IoStatus::Closed: return RecvStatus::Corrupt;
        }
    }
    if (frame_version_ >= 2) {
        // v2 trailer: CRC32C of the payload. A mismatch is Corrupt —
        // caught here, before the payload decoder ever sees the bytes.
        std::uint8_t trailer[4];
        switch (read_exact(trailer, sizeof(trailer), /*timeout_ms=*/-1,
                           /*started=*/true)) {
            case IoStatus::Ok: break;
            case IoStatus::Timeout:
            case IoStatus::Stalled:
            case IoStatus::Closed: return RecvStatus::Corrupt;
        }
        std::uint32_t wire_crc = 0;
        for (int i = 0; i < 4; ++i)
            wire_crc |= static_cast<std::uint32_t>(trailer[i]) << (8 * i);
        if (wire_crc != crc32c(payload)) return RecvStatus::Corrupt;
    }
    return RecvStatus::Ok;
}

void FrameChannel::shutdown() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::pair<int, int> socket_pair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw_errno("socketpair");
    return {fds[0], fds[1]};
}

int tcp_listen(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("bind");
    }
    if (::listen(fd, 16) != 0) {
        ::close(fd);
        throw_errno("listen");
    }
    return fd;
}

int tcp_accept(int listen_fd) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return fd;
        }
        if (errno != EINTR) throw_errno("accept");
    }
}

namespace {

/// One bounded non-blocking connect attempt. Returns the connected fd
/// (restored to blocking mode) or -1.
int connect_one(const addrinfo* ai, int timeout_ms) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) return -1;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        ::close(fd);
        return -1;
    }
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINTR) rc = -1, errno = EINPROGRESS;
    if (rc != 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return -1;
        }
        // Race the three-way handshake against the deadline: a blackholed
        // host answers nothing, so without the poll() bound this is where
        // the old implementation hung for the OS default timeout.
        pollfd pfd{fd, POLLOUT, 0};
        for (;;) {
            const int ready = ::poll(&pfd, 1, timeout_ms);
            if (ready < 0 && errno == EINTR) continue;
            if (ready <= 0) {  // timeout or poll failure
                ::close(fd);
                return -1;
            }
            break;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            ::close(fd);
            return -1;
        }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

}  // namespace

int tcp_connect(const std::string& host, std::uint16_t port,
                int timeout_ms) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                                 &result);
    if (rc != 0)
        throw std::runtime_error("getaddrinfo " + host + ": " +
                                 gai_strerror(rc));
    int fd = -1;
    for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
        fd = connect_one(ai, timeout_ms);
        if (fd >= 0) break;
    }
    ::freeaddrinfo(result);
    if (fd < 0)
        throw std::runtime_error("connect " + host + ":" + service +
                                 " failed or timed out");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

}  // namespace mtg::net
