#include "net/query_protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "util/contracts.hpp"
#include "word/background.hpp"

namespace mtg::net {

// ---- Json -----------------------------------------------------------------

Json Json::array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json Json::object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

namespace {

[[noreturn]] void type_error(const char* wanted) {
    throw std::runtime_error(std::string("json: expected ") + wanted);
}

}  // namespace

bool Json::as_bool() const {
    if (kind_ != Kind::Bool) type_error("bool");
    return bool_;
}

std::int64_t Json::as_int() const {
    if (kind_ != Kind::Int) type_error("int");
    return int_;
}

const std::string& Json::as_string() const {
    if (kind_ != Kind::String) type_error("string");
    return string_;
}

const std::vector<Json>& Json::items() const {
    if (kind_ != Kind::Array) type_error("array");
    return array_;
}

const Json* Json::find(const std::string& key) const {
    if (kind_ != Kind::Object) return nullptr;
    for (const auto& [name, value] : object_)
        if (name == key) return &value;
    return nullptr;
}

void Json::push_back(Json value) {
    MTG_EXPECTS(kind_ == Kind::Array);
    array_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
    MTG_EXPECTS(kind_ == Kind::Object);
    for (auto& [name, existing] : object_) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static const char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

}  // namespace

std::string Json::dump() const {
    std::string out;
    switch (kind_) {
        case Kind::Null: out = "null"; break;
        case Kind::Bool: out = bool_ ? "true" : "false"; break;
        case Kind::Int: out = std::to_string(int_); break;
        case Kind::String: dump_string(string_, out); break;
        case Kind::Array: {
            out += '[';
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i > 0) out += ',';
                out += array_[i].dump();
            }
            out += ']';
            break;
        }
        case Kind::Object: {
            out += '{';
            for (std::size_t i = 0; i < object_.size(); ++i) {
                if (i > 0) out += ',';
                dump_string(object_[i].first, out);
                out += ':';
                out += object_[i].second.dump();
            }
            out += '}';
            break;
        }
    }
    return out;
}

namespace {

/// Recursive-descent parser over a bounded string. Depth is bounded so a
/// "[[[[..." line cannot blow the stack.
class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    Json parse() {
        Json value = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing bytes");
        return value;
    }

private:
    static constexpr int kMaxDepth = 32;

    const std::string& text_;
    std::size_t pos_{0};

    [[noreturn]] void fail(const std::string& why) const {
        throw std::runtime_error("json: " + why + " at byte " +
                                 std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\r' || text_[pos_] == '\n'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end");
        return text_[pos_];
    }

    bool consume(const char* literal) {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) != 0) return false;
        pos_ += len;
        return true;
    }

    Json parse_value(int depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        skip_ws();
        const char c = peek();
        if (c == '{') return parse_object(depth);
        if (c == '[') return parse_array(depth);
        if (c == '"') return Json(parse_string());
        if (c == '-' || (c >= '0' && c <= '9')) return parse_int();
        if (consume("null")) return Json();
        if (consume("true")) return Json(true);
        if (consume("false")) return Json(false);
        fail("unexpected character");
    }

    Json parse_int() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() && std::isdigit(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E'))
            fail("floats are not part of this protocol");
        try {
            return Json(static_cast<std::int64_t>(
                std::stoll(text_.substr(start, pos_ - start))));
        } catch (const std::exception&) {
            fail("bad integer");
        }
    }

    std::string parse_string() {
        if (peek() != '"') fail("expected string");
        ++pos_;
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= h - '0';
                        else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                        else fail("bad \\u escape");
                    }
                    // ASCII only — the protocol's strings are test syntax
                    // and fault names; reject anything wider rather than
                    // silently mangling it.
                    if (code > 0x7f) fail("non-ascii \\u escape");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Json parse_array(int depth) {
        ++pos_;  // '['
        Json out = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.push_back(parse_value(depth + 1));
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == ']') return out;
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    Json parse_object(int depth) {
        ++pos_;  // '{'
        Json out = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skip_ws();
            const std::string key = parse_string();
            skip_ws();
            if (peek() != ':') fail("expected ':'");
            ++pos_;
            out.set(key, parse_value(depth + 1));
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == '}') return out;
            if (c != ',') fail("expected ',' or '}'");
        }
    }
};

}  // namespace

Json Json::parse(const std::string& text) {
    return JsonParser(text).parse();
}

// ---- requests -------------------------------------------------------------

namespace {

constexpr struct {
    const char* name;
    QueryOp op;
} kOps[] = {
    {"detects", QueryOp::Detects}, {"detects_all", QueryOp::DetectsAll},
    {"traces", QueryOp::Traces},   {"sweep", QueryOp::Sweep},
    {"stats", QueryOp::Stats},     {"ping", QueryOp::Ping},
};

const char* op_name(QueryOp op) {
    for (const auto& entry : kOps)
        if (entry.op == op) return entry.name;
    return "ping";
}

QueryOp parse_op(const std::string& name) {
    for (const auto& entry : kOps)
        if (name == entry.name) return entry.op;
    throw std::runtime_error("unknown op \"" + name + "\"");
}

int int_field(const Json& root, const char* key, int fallback) {
    const Json* field = root.find(key);
    if (field == nullptr) return fallback;
    const std::int64_t value = field->as_int();
    if (value < 0 || value > 1'000'000)
        throw std::runtime_error(std::string(key) + " out of range");
    return static_cast<int>(value);
}

std::string string_field(const Json& root, const char* key) {
    const Json* field = root.find(key);
    return field == nullptr ? std::string() : field->as_string();
}

}  // namespace

QueryRequest parse_request(const std::string& line) {
    const Json root = Json::parse(line);
    if (root.kind() != Json::Kind::Object)
        throw std::runtime_error("request must be a json object");
    QueryRequest request;
    if (const Json* id = root.find("id")) request.id = id->as_int();
    const Json* op = root.find("op");
    if (op == nullptr) throw std::runtime_error("missing op");
    request.op = parse_op(op->as_string());
    request.test = string_field(root, "test");
    request.kinds = string_field(root, "kinds");
    const std::string universe = string_field(root, "universe");
    if (universe == "word") request.word = true;
    else if (!universe.empty() && universe != "bit")
        throw std::runtime_error("unknown universe \"" + universe + "\"");
    request.memory_size = int_field(root, "n", 0);
    request.words = int_field(root, "words", 0);
    request.width = int_field(root, "width", 0);
    request.backgrounds = string_field(root, "backgrounds");
    request.max_any = int_field(root, "max_any", 0);
    const std::string klass = string_field(root, "class");
    if (klass == "interactive") request.klass = QueryClass::Interactive;
    else if (klass == "bulk") request.klass = QueryClass::Bulk;
    else if (!klass.empty())
        throw std::runtime_error("unknown class \"" + klass + "\"");
    const bool needs_query =
        request.op != QueryOp::Stats && request.op != QueryOp::Ping;
    if (needs_query && request.test.empty())
        throw std::runtime_error("missing test");
    if (needs_query && request.kinds.empty())
        throw std::runtime_error("missing kinds");
    return request;
}

std::int64_t salvage_request_id(const std::string& line) {
    try {
        const Json root = Json::parse(line);
        if (const Json* id = root.find("id")) return id->as_int();
    } catch (const std::exception&) {
        // Bad JSON has no id worth trusting.
    }
    return 0;
}

std::string render_request(const QueryRequest& request) {
    Json root = Json::object();
    root.set("id", Json(request.id));
    root.set("op", Json(op_name(request.op)));
    if (!request.test.empty()) root.set("test", Json(request.test));
    if (!request.kinds.empty()) root.set("kinds", Json(request.kinds));
    if (request.word) root.set("universe", Json("word"));
    if (request.memory_size > 0)
        root.set("n", Json(std::int64_t{request.memory_size}));
    if (request.words > 0) root.set("words", Json(std::int64_t{request.words}));
    if (request.width > 0) root.set("width", Json(std::int64_t{request.width}));
    if (!request.backgrounds.empty())
        root.set("backgrounds", Json(request.backgrounds));
    if (request.max_any > 0)
        root.set("max_any", Json(std::int64_t{request.max_any}));
    if (request.klass.has_value())
        root.set("class", Json(*request.klass == QueryClass::Interactive
                                   ? "interactive"
                                   : "bulk"));
    return root.dump();
}

engine::Query to_engine_query(const QueryRequest& request) {
    MTG_EXPECTS(request.op != QueryOp::Stats && request.op != QueryOp::Ping);
    engine::Query query;
    try {
        query.test = march::find_march_test(request.test).test;
    } catch (const std::invalid_argument&) {
        query.test = march::parse_march(request.test);
    }
    query.kinds = fault::parse_fault_kinds(request.kinds);
    switch (request.op) {
        case QueryOp::Detects: query.want = engine::Want::Detects; break;
        case QueryOp::DetectsAll: query.want = engine::Want::DetectsAll; break;
        case QueryOp::Traces: query.want = engine::Want::Traces; break;
        case QueryOp::Sweep: query.want = engine::Want::DictionarySweep; break;
        case QueryOp::Stats:
        case QueryOp::Ping: break;  // unreachable: guarded above
    }
    if (request.word) {
        word::WordRunOptions opts;
        if (request.words > 0) opts.words = request.words;
        if (request.width > 0) opts.width = request.width;
        if (request.max_any > 0) opts.max_any_expansion = request.max_any;
        std::vector<word::Background> backgrounds;
        if (request.backgrounds.empty() || request.backgrounds == "counting")
            backgrounds = word::counting_backgrounds(opts.width);
        else if (request.backgrounds == "solid")
            backgrounds = word::solid_background(opts.width);
        else
            throw std::runtime_error("unknown backgrounds \"" +
                                     request.backgrounds + "\"");
        query.universe =
            engine::WordUniverse{std::move(backgrounds), opts};
    } else {
        sim::RunOptions opts;
        if (request.memory_size > 0) opts.memory_size = request.memory_size;
        if (request.max_any > 0) opts.max_any_expansion = request.max_any;
        query.universe = engine::BitUniverse{opts};
    }
    return query;
}

QueryClass classify(const QueryRequest& request) {
    if (request.klass.has_value()) return *request.klass;
    switch (request.op) {
        case QueryOp::Traces:
        case QueryOp::Sweep: return QueryClass::Bulk;
        case QueryOp::Detects:
        case QueryOp::DetectsAll:
        case QueryOp::Stats:
        case QueryOp::Ping: break;
    }
    return QueryClass::Interactive;
}

std::string coalesce_key(const QueryRequest& request,
                         const engine::Query& query) {
    if (request.op == QueryOp::Stats || request.op == QueryOp::Ping)
        return {};
    // Canonical pieces only: the rendered (parsed) test, the resolved
    // universe dimensions, and the canonical kind list — so every spelling
    // that resolves to the same work shares one key.
    std::string key = query.test.str();
    key += '|';
    key += std::to_string(static_cast<int>(query.want));
    key += '|';
    if (const auto* bit = std::get_if<engine::BitUniverse>(&query.universe)) {
        key += "bit:";
        key += std::to_string(bit->opts.memory_size);
        key += ':';
        key += std::to_string(bit->opts.max_any_expansion);
    } else {
        const auto& word = std::get<engine::WordUniverse>(query.universe);
        key += "word:";
        key += std::to_string(word.opts.words);
        key += ':';
        key += std::to_string(word.opts.width);
        key += ':';
        key += std::to_string(word.opts.max_any_expansion);
        key += ':';
        key += std::to_string(word.backgrounds.size());
    }
    for (fault::FaultKind kind : engine::canonical_kinds(query.kinds)) {
        key += '|';
        key += fault::fault_kind_name(kind);
    }
    return key;
}

// ---- responses ------------------------------------------------------------

std::string detected_mask(const std::vector<bool>& detected) {
    static const char hex[] = "0123456789abcdef";
    std::string mask((detected.size() + 3) / 4, '0');
    for (std::size_t i = 0; i < detected.size(); ++i) {
        if (!detected[i]) continue;
        mask[i / 4] = hex[(mask[i / 4] >= 'a' ? mask[i / 4] - 'a' + 10
                                              : mask[i / 4] - '0') |
                          (1 << (i % 4))];
    }
    return mask;
}

namespace {

std::string site_str(const sim::ReadSite& site) {
    return std::to_string(site.element) + "." + std::to_string(site.op);
}

std::string hex_u64(std::uint64_t value) {
    static const char hex[] = "0123456789abcdef";
    if (value == 0) return "0";
    std::string out;
    while (value != 0) {
        out.insert(out.begin(), hex[value & 0xf]);
        value >>= 4;
    }
    return out;
}

Json render_bit_trace(const sim::RunTrace& trace) {
    Json out = Json::object();
    out.set("d", Json(trace.detected));
    Json reads = Json::array();
    for (const sim::ReadSite& site : trace.failing_reads)
        reads.push_back(Json(site_str(site)));
    out.set("r", std::move(reads));
    Json observations = Json::array();
    for (const sim::Observation& obs : trace.failing_observations)
        observations.push_back(
            Json(site_str(obs.site) + "@" + std::to_string(obs.cell)));
    out.set("o", std::move(observations));
    return out;
}

Json render_word_trace(const word::WordRunTrace& trace) {
    Json out = Json::object();
    out.set("d", Json(trace.detected));
    Json reads = Json::array();
    for (const word::WordReadSite& site : trace.failing_reads)
        reads.push_back(
            Json(std::to_string(site.background) + ":" + site_str(site.site)));
    out.set("r", std::move(reads));
    Json observations = Json::array();
    for (const word::WordObservation& obs : trace.failing_observations)
        observations.push_back(Json(
            std::to_string(obs.background) + ":" + site_str(obs.site) + "@" +
            std::to_string(obs.word) + "#" + hex_u64(obs.bits)));
    out.set("o", std::move(observations));
    return out;
}

}  // namespace

std::string render_result(std::int64_t id, const engine::Result& result) {
    Json root = Json::object();
    root.set("id", Json(id));
    root.set("ok", Json(true));
    root.set("all", Json(result.all));
    if (result.want != engine::Want::DetectsAll) {
        root.set("detected", Json(detected_mask(result.detected)));
        std::int64_t count = 0;
        for (bool d : result.detected) count += d;
        root.set("count", Json(count));
    }
    if (result.want == engine::Want::Traces ||
        result.want == engine::Want::DictionarySweep) {
        Json traces = Json::array();
        for (const sim::RunTrace& trace : result.traces)
            traces.push_back(render_bit_trace(trace));
        for (const word::WordRunTrace& trace : result.word_traces)
            traces.push_back(render_word_trace(trace));
        root.set("traces", std::move(traces));
    }
    if (result.want == engine::Want::DictionarySweep) {
        Json instances = Json::array();
        for (const fault::FaultInstance& instance : result.instances)
            instances.push_back(Json(instance.name()));
        root.set("instances", std::move(instances));
    }
    return root.dump();
}

std::string render_error(std::int64_t id, const std::string& message) {
    Json root = Json::object();
    root.set("id", Json(id));
    root.set("ok", Json(false));
    root.set("error", Json(message));
    return root.dump();
}

// ---- LineChannel ----------------------------------------------------------

LineChannel::LineChannel(int fd) : fd_(fd) {}

LineChannel::~LineChannel() {
    if (fd_ >= 0) ::close(fd_);
}

LineChannel::LineChannel(LineChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineChannel& LineChannel::operator=(LineChannel&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

LineChannel::ReadStatus LineChannel::read_line(std::string& line,
                                               int timeout_ms) {
    using clock = std::chrono::steady_clock;
    const bool has_deadline = timeout_ms >= 0;
    const auto deadline =
        clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            return ReadStatus::Ok;
        }
        if (buffer_.size() > kMaxLineBytes) return ReadStatus::Overflow;
        if (fd_ < 0) return ReadStatus::Closed;
        int wait = -1;
        if (has_deadline) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - clock::now())
                    .count();
            wait = left < 0 ? 0 : static_cast<int>(left);
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, wait);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return ReadStatus::Closed;
        }
        if (ready == 0) return ReadStatus::Timeout;
        char chunk[4096];
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EINTR) continue;
            return ReadStatus::Closed;
        }
        if (got == 0) return ReadStatus::Closed;
        buffer_.append(chunk, static_cast<std::size_t>(got));
    }
}

bool LineChannel::write_line(const std::string& line) {
    if (fd_ < 0) return false;
    std::string framed = line;
    framed += '\n';
    const char* data = framed.data();
    std::size_t left = framed.size();
    while (left > 0) {
        const ssize_t wrote = ::send(fd_, data, left, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
    return true;
}

void LineChannel::shutdown() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace mtg::net
