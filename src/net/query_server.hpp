#pragma once

/// \file query_server.hpp
/// The persistent query server: one long-lived Engine pair behind the
/// line-JSON protocol (query_protocol.hpp), serving concurrent client
/// sessions over real sockets or in-process socketpairs.
///
/// Why a server at all: every march_tool invocation used to pay the full
/// session warm-up — population expansion, dictionary sweeps — and throw
/// it away on exit. The server keeps those hot: both engines share ONE
/// PopulationCache (a kind expansion missed by an interactive probe warms
/// the next bulk sweep and vice versa), and finished DictionarySweep
/// results are retained in a bounded sweep cache so a second session
/// asking for the same dictionary gets it without a backend run.
///
/// Admission has two priority classes. Interactive requests (detects /
/// detects_all, plus stats and ping which never queue) are executed by a
/// reserved lane of executor threads driving an Engine on its own small
/// thread pool; bulk requests (traces / sweep) run on separate executors
/// driving an Engine on the process-wide pool. The split is what bounds
/// interactive latency: ThreadPool serialises concurrent parallel_for
/// callers, so a multi-second DictionarySweep on the global pool would
/// otherwise gate every probe behind it. Bulk executors are
/// work-conserving — when their queue is empty they drain interactive
/// work (still on the interactive engine) — but never the reverse.
///
/// Identical in-flight queries coalesce at admission: a request whose
/// coalesce_key matches a queued or running task is attached to that
/// task as an extra subscriber and consumes no executor. The key is
/// built from the *resolved* query (canonical test text, universe
/// dimensions, canonical kinds), so permuted kind lists and alternative
/// test spellings collapse too.
///
/// Re-entrancy ground truth: both Engines are shared by all executor
/// threads with no external locking — exactly the contract
/// engine.hpp promises and tests/engine_hammer_test.cpp enforces under
/// TSan.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/query_protocol.hpp"
#include "util/thread_pool.hpp"

namespace mtg::net {

struct QueryServerOptions {
    /// Reserved interactive executor threads (>= 1).
    int interactive_executors{2};
    /// Bulk executor threads (>= 1); work-conserving.
    int bulk_executors{2};
    /// Worker lanes of the interactive engine's private pool (0 = 2).
    int interactive_pool_workers{0};
    /// Retained DictionarySweep results (FIFO). 0 disables the cache.
    std::size_t sweep_cache_entries{32};
    /// Shared population cache; nullptr = the server builds its own
    /// (which the two engines still share with each other).
    std::shared_ptr<engine::PopulationCache> cache;
    /// Retained-fault budget when the server builds its own cache
    /// (0 = PopulationCache default).
    std::size_t cache_budget{0};
};

/// The server. Construction starts the executor threads; sessions are
/// added with serve_fd() (an adopted connected socket — TCP or one end
/// of a socketpair) or by listen() + an internal accept loop. stop()
/// (idempotent, also run by the destructor) closes every session,
/// answers queued work with an error, and joins all threads.
class QueryServer {
public:
    explicit QueryServer(QueryServerOptions options = {});
    ~QueryServer();

    QueryServer(const QueryServer&) = delete;
    QueryServer& operator=(const QueryServer&) = delete;

    /// Adopts a connected stream socket as a client session. Safe from
    /// any thread while the server is running.
    void serve_fd(int fd);

    /// Binds and listens on `port` (0 = ephemeral) and starts the accept
    /// loop. Returns the bound port.
    std::uint16_t listen(std::uint16_t port);
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Stops accepting, wakes every session and executor, fails queued
    /// tasks, joins all threads. Idempotent.
    void stop();

    struct Stats {
        std::size_t requests{0};        ///< decoded request lines
        std::size_t responses{0};       ///< reply lines written
        std::size_t errors{0};          ///< "ok": false replies
        std::size_t backend_runs{0};    ///< Engine::run invocations
        std::size_t coalesced{0};       ///< requests attached to in-flight runs
        std::size_t sweep_cache_hits{0};
        std::size_t interactive_done{0};
        std::size_t bulk_done{0};
        std::size_t sessions{0};        ///< sessions ever admitted
    };
    [[nodiscard]] Stats stats() const;

    /// The shared population cache (for tests asserting cross-session
    /// warming).
    [[nodiscard]] const std::shared_ptr<engine::PopulationCache>&
    population_cache() const {
        return cache_;
    }

private:
    struct Session;
    struct Task;

    QueryServerOptions options_;
    std::shared_ptr<engine::PopulationCache> cache_;
    std::unique_ptr<util::ThreadPool> interactive_pool_;
    std::unique_ptr<engine::Engine> interactive_engine_;
    std::unique_ptr<engine::Engine> bulk_engine_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    bool stopping_{false};
    std::deque<std::shared_ptr<Task>> interactive_queue_;
    std::deque<std::shared_ptr<Task>> bulk_queue_;
    std::map<std::string, std::shared_ptr<Task>> tasks_by_key_;
    std::map<std::string, engine::Result> sweep_cache_;
    std::deque<std::string> sweep_cache_order_;
    Stats stats_;

    std::vector<std::thread> executors_;
    std::vector<std::shared_ptr<Session>> sessions_;
    std::vector<std::thread> session_threads_;
    std::thread accept_thread_;
    int listen_fd_{-1};
    std::uint16_t port_{0};

    void executor_loop(QueryClass lane);
    void session_loop(const std::shared_ptr<Session>& session);
    void accept_loop();
    void handle_line(const std::shared_ptr<Session>& session,
                     const std::string& line);
    void run_task(const std::shared_ptr<Task>& task);
    void reply(const std::shared_ptr<Session>& session,
               const std::string& line, bool is_error);
    [[nodiscard]] std::string render_stats(std::int64_t id) const;
};

/// A client of the server: connects (or adopts an fd), sends requests,
/// reads replies. Replies arrive in completion order, not send order —
/// match by id when pipelining.
class QueryClient {
public:
    /// Adopts a connected fd (e.g. one end of net::socket_pair()).
    explicit QueryClient(int fd);
    QueryClient(const std::string& host, std::uint16_t port,
                int connect_timeout_ms = 5000);

    /// Sends one request line. False when the connection is dead.
    [[nodiscard]] bool send(const QueryRequest& request);

    /// Reads one reply line. nullopt on timeout or closed connection.
    [[nodiscard]] std::optional<std::string> read_reply(int timeout_ms = -1);

    /// send() + read_reply() for the single-outstanding case.
    [[nodiscard]] std::optional<std::string> roundtrip(
        const QueryRequest& request, int timeout_ms = -1);

    void shutdown() { channel_.shutdown(); }

private:
    LineChannel channel_;
};

}  // namespace mtg::net
