#include "net/query_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "net/framing.hpp"
#include "util/contracts.hpp"

namespace mtg::net {

/// One client connection: the line channel plus the write lock that
/// serialises replies from executors against replies from the session's
/// own reader (ping/stats/errors).
struct QueryServer::Session {
    explicit Session(int fd) : channel(fd) {}

    LineChannel channel;
    std::mutex write_mutex;
};

/// One admitted unit of backend work. `subscribers` is every (id,
/// session) waiting on it — one after admission, more after coalescing.
struct QueryServer::Task {
    QueryRequest request;  ///< the first request admitted under this key
    engine::Query query;
    std::string key;
    QueryClass klass{QueryClass::Interactive};
    std::vector<std::pair<std::int64_t, std::shared_ptr<Session>>> subscribers;
};

QueryServer::QueryServer(QueryServerOptions options)
    : options_(options),
      cache_(options.cache != nullptr
                 ? options.cache
                 : std::make_shared<engine::PopulationCache>(
                       options.cache_budget)) {
    if (options_.interactive_executors < 1) options_.interactive_executors = 1;
    if (options_.bulk_executors < 1) options_.bulk_executors = 1;
    const int pool_workers = options_.interactive_pool_workers > 0
                                 ? options_.interactive_pool_workers
                                 : 2;
    interactive_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<unsigned>(pool_workers));
    engine::EngineConfig interactive_config;
    interactive_config.pool = interactive_pool_.get();
    interactive_config.cache = cache_;
    interactive_engine_ =
        std::make_unique<engine::Engine>(interactive_config);
    engine::EngineConfig bulk_config;
    bulk_config.cache = cache_;
    bulk_engine_ = std::make_unique<engine::Engine>(bulk_config);

    for (int i = 0; i < options_.interactive_executors; ++i)
        executors_.emplace_back(
            [this] { executor_loop(QueryClass::Interactive); });
    for (int i = 0; i < options_.bulk_executors; ++i)
        executors_.emplace_back([this] { executor_loop(QueryClass::Bulk); });
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::serve_fd(int fd) {
    auto session = std::make_shared<Session>(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // Session's destructor closes the fd
    ++stats_.sessions;
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { session_loop(session); });
}

std::uint16_t QueryServer::listen(std::uint16_t port) {
    MTG_EXPECTS(listen_fd_ < 0);
    listen_fd_ = tcp_listen(port);
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0)
        throw std::runtime_error("getsockname failed");
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
    return port_;
}

void QueryServer::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // stop() shut the listen socket down
        }
        serve_fd(fd);
    }
}

void QueryServer::stop() {
    std::vector<std::shared_ptr<Task>> orphaned;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) return;
        stopping_ = true;
        for (auto& task : interactive_queue_) orphaned.push_back(task);
        for (auto& task : bulk_queue_) orphaned.push_back(task);
        interactive_queue_.clear();
        bulk_queue_.clear();
        tasks_by_key_.clear();
    }
    work_cv_.notify_all();
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (auto& task : orphaned)
        for (auto& [id, session] : task->subscribers)
            reply(session, render_error(id, "server stopped"), true);
    // Executors first: running tasks finish and answer over still-open
    // sessions; only then are the sessions woken and joined.
    for (std::thread& executor : executors_) executor.join();
    executors_.clear();
    std::vector<std::shared_ptr<Session>> sessions;
    std::vector<std::thread> session_threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sessions.swap(sessions_);
        session_threads.swap(session_threads_);
    }
    for (auto& session : sessions) session->channel.shutdown();
    for (std::thread& thread : session_threads) thread.join();
}

QueryServer::Stats QueryServer::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void QueryServer::reply(const std::shared_ptr<Session>& session,
                        const std::string& line, bool is_error) {
    bool written = false;
    {
        std::lock_guard<std::mutex> lock(session->write_mutex);
        written = session->channel.write_line(line);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (written) ++stats_.responses;
    if (is_error) ++stats_.errors;
}

std::string QueryServer::render_stats(std::int64_t id) const {
    Stats snapshot;
    engine::PopulationCache::Stats cache;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot = stats_;
    }
    cache = cache_->stats();
    Json body = Json::object();
    body.set("requests", Json(std::int64_t(snapshot.requests)));
    body.set("responses", Json(std::int64_t(snapshot.responses)));
    body.set("errors", Json(std::int64_t(snapshot.errors)));
    body.set("backend_runs", Json(std::int64_t(snapshot.backend_runs)));
    body.set("coalesced", Json(std::int64_t(snapshot.coalesced)));
    body.set("sweep_cache_hits",
             Json(std::int64_t(snapshot.sweep_cache_hits)));
    body.set("interactive_done",
             Json(std::int64_t(snapshot.interactive_done)));
    body.set("bulk_done", Json(std::int64_t(snapshot.bulk_done)));
    body.set("sessions", Json(std::int64_t(snapshot.sessions)));
    body.set("cache_hits", Json(std::int64_t(cache.hits)));
    body.set("cache_misses", Json(std::int64_t(cache.misses)));
    body.set("cache_evictions", Json(std::int64_t(cache.evictions)));
    body.set("cache_retained_faults",
             Json(std::int64_t(cache.retained_faults)));
    // Per-Want query counts summed over the interactive and bulk engines
    // (they share the population cache reported above, so the cache
    // counters already cover both).
    const engine::Engine::Stats interactive = interactive_engine_->stats();
    const engine::Engine::Stats bulk = bulk_engine_->stats();
    body.set("engine_queries",
             Json(std::int64_t(interactive.queries + bulk.queries)));
    body.set("want_detects", Json(std::int64_t(interactive.want_detects +
                                               bulk.want_detects)));
    body.set("want_detects_all",
             Json(std::int64_t(interactive.want_detects_all +
                               bulk.want_detects_all)));
    body.set("want_traces",
             Json(std::int64_t(interactive.want_traces + bulk.want_traces)));
    body.set("want_sweeps",
             Json(std::int64_t(interactive.want_sweeps + bulk.want_sweeps)));
    Json root = Json::object();
    root.set("id", Json(id));
    root.set("ok", Json(true));
    root.set("stats", std::move(body));
    return root.dump();
}

void QueryServer::handle_line(const std::shared_ptr<Session>& session,
                              const std::string& line) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests;
    }
    QueryRequest request;
    try {
        request = parse_request(line);
    } catch (const std::exception& error) {
        reply(session, render_error(salvage_request_id(line), error.what()),
              true);
        return;
    }
    if (request.op == QueryOp::Ping) {
        Json root = Json::object();
        root.set("id", Json(request.id));
        root.set("ok", Json(true));
        root.set("pong", Json(true));
        reply(session, root.dump(), false);
        return;
    }
    if (request.op == QueryOp::Stats) {
        reply(session, render_stats(request.id), false);
        return;
    }

    engine::Query query;
    try {
        query = to_engine_query(request);
    } catch (const std::exception& error) {
        reply(session, render_error(request.id, error.what()), true);
        return;
    }
    const QueryClass klass = classify(request);
    const std::string key = coalesce_key(request, query);

    std::optional<engine::Result> cached_sweep;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // Handled outside the lock below via the error path.
        } else if (request.op == QueryOp::Sweep &&
                   sweep_cache_.count(key) != 0) {
            ++stats_.sweep_cache_hits;
            cached_sweep = sweep_cache_.at(key);
        } else if (const auto it = tasks_by_key_.find(key);
                   it != tasks_by_key_.end()) {
            // Coalesce: one backend run answers every identical
            // in-flight request, whatever its session or admission lane.
            ++stats_.coalesced;
            it->second->subscribers.emplace_back(request.id, session);
            return;
        } else {
            auto task = std::make_shared<Task>();
            task->request = request;
            task->query = std::move(query);
            task->key = key;
            task->klass = klass;
            task->subscribers.emplace_back(request.id, session);
            tasks_by_key_.emplace(key, task);
            (klass == QueryClass::Interactive ? interactive_queue_
                                              : bulk_queue_)
                .push_back(std::move(task));
            // notify_all, not notify_one: the waiters are heterogeneous
            // (interactive executors never serve the bulk queue), so a
            // single notification can be swallowed by an executor whose
            // predicate is false and the task would sit queued forever.
            work_cv_.notify_all();
            return;
        }
    }
    if (cached_sweep.has_value()) {
        reply(session, render_result(request.id, *cached_sweep), false);
        return;
    }
    reply(session, render_error(request.id, "server stopped"), true);
}

void QueryServer::executor_loop(QueryClass lane) {
    for (;;) {
        std::shared_ptr<Task> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                if (stopping_) return true;
                if (!interactive_queue_.empty() &&
                    (lane == QueryClass::Interactive ||
                     bulk_queue_.empty()))
                    return true;
                return lane == QueryClass::Bulk && !bulk_queue_.empty();
            });
            if (stopping_) return;
            // Interactive executors only ever serve the interactive
            // queue; bulk executors prefer bulk work but drain
            // interactive when idle (work-conserving, never inverted).
            if (lane == QueryClass::Bulk && !bulk_queue_.empty()) {
                task = std::move(bulk_queue_.front());
                bulk_queue_.pop_front();
            } else if (!interactive_queue_.empty()) {
                task = std::move(interactive_queue_.front());
                interactive_queue_.pop_front();
            }
        }
        if (task != nullptr) run_task(task);
    }
}

void QueryServer::run_task(const std::shared_ptr<Task>& task) {
    // The engine follows the task's class, not the executor's lane: an
    // interactive probe picked up by an idle bulk executor still runs on
    // the interactive engine's private pool, so it can never block on a
    // sweep's parallel_for serialisation.
    const engine::Engine& engine = task->klass == QueryClass::Interactive
                                       ? *interactive_engine_
                                       : *bulk_engine_;
    std::optional<engine::Result> result;
    std::string error;
    try {
        result = engine.run(task->query);
    } catch (const std::exception& failure) {
        error = failure.what();
    }
    std::vector<std::pair<std::int64_t, std::shared_ptr<Session>>> subscribers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_by_key_.erase(task->key);
        subscribers.swap(task->subscribers);
        ++stats_.backend_runs;
        ++(task->klass == QueryClass::Interactive ? stats_.interactive_done
                                                  : stats_.bulk_done);
        if (result.has_value() && task->request.op == QueryOp::Sweep &&
            options_.sweep_cache_entries > 0 &&
            sweep_cache_.count(task->key) == 0) {
            sweep_cache_.emplace(task->key, *result);
            sweep_cache_order_.push_back(task->key);
            while (sweep_cache_order_.size() > options_.sweep_cache_entries) {
                sweep_cache_.erase(sweep_cache_order_.front());
                sweep_cache_order_.pop_front();
            }
        }
    }
    for (auto& [id, session] : subscribers) {
        if (result.has_value())
            reply(session, render_result(id, *result), false);
        else
            reply(session, render_error(id, error), true);
    }
}

void QueryServer::session_loop(const std::shared_ptr<Session>& session) {
    std::string line;
    for (;;) {
        switch (session->channel.read_line(line, /*timeout_ms=*/-1)) {
            case LineChannel::ReadStatus::Ok: break;
            case LineChannel::ReadStatus::Timeout: continue;  // unreachable
            case LineChannel::ReadStatus::Overflow:
                // Not speaking the protocol; one parting error, then out.
                reply(session, render_error(0, "line too long"), true);
                return;
            case LineChannel::ReadStatus::Closed: return;
        }
        if (line.empty()) continue;
        handle_line(session, line);
    }
}

// ---- QueryClient ----------------------------------------------------------

QueryClient::QueryClient(int fd) : channel_(fd) {}

QueryClient::QueryClient(const std::string& host, std::uint16_t port,
                         int connect_timeout_ms)
    : channel_(tcp_connect(host, port, connect_timeout_ms)) {}

bool QueryClient::send(const QueryRequest& request) {
    return channel_.write_line(render_request(request));
}

std::optional<std::string> QueryClient::read_reply(int timeout_ms) {
    std::string line;
    if (channel_.read_line(line, timeout_ms) != LineChannel::ReadStatus::Ok)
        return std::nullopt;
    return line;
}

std::optional<std::string> QueryClient::roundtrip(const QueryRequest& request,
                                                  int timeout_ms) {
    if (!send(request)) return std::nullopt;
    return read_reply(timeout_ms);
}

}  // namespace mtg::net
